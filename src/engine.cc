#include "engine.h"

#include <cstdio>

#include "sketch/builtin_algorithms.h"
#include "util/check.h"

namespace ifsketch {

std::optional<Engine> Engine::Build(const core::Database& db,
                                    const std::string& algorithm,
                                    const core::SketchParams& params,
                                    util::Rng& rng) {
  if (!core::ValidSketchParams(params)) return std::nullopt;
  auto algo = sketch::BuiltinRegistry().Create(algorithm);
  if (algo == nullptr) return std::nullopt;

  sketch::SketchFile file;
  file.algorithm = algo->name();
  file.params = params;
  file.n = db.num_rows();
  file.d = db.num_columns();
  file.summary = algo->Build(db, params, rng);
  return Engine(std::move(file),
                std::shared_ptr<const core::SketchAlgorithm>(std::move(algo)));
}

std::optional<Engine> Engine::Open(const std::string& path) {
  auto file = sketch::LoadSketchFile(path);
  if (!file.has_value()) return std::nullopt;
  return FromFile(*std::move(file));
}

std::optional<Engine> Engine::FromFile(sketch::SketchFile file) {
  auto algo = sketch::ResolveAlgorithm(file);
  if (algo == nullptr) return std::nullopt;
  // A header can be well-formed while its payload is not the algorithm's:
  // Build() contractually emits exactly PredictedSizeBits, so anything
  // else would only abort later inside a loader CHECK. Reject it here.
  if (file.summary.size() !=
      algo->PredictedSizeBits(file.n, file.d, file.params)) {
    return std::nullopt;
  }
  return Engine(std::move(file),
                std::shared_ptr<const core::SketchAlgorithm>(std::move(algo)));
}

bool Engine::Save(const std::string& path) const {
  return sketch::SaveSketchFile(path, file_);
}

std::vector<std::string> Engine::KnownAlgorithms() {
  return sketch::BuiltinRegistry().Names();
}

const core::FrequencyEstimator& Engine::estimator() const {
  std::call_once(views_->estimator_once, [this] {
    // The estimator view only exists for estimator-flavored summaries
    // (e.g. RELEASE-ANSWERS stores single decision bits otherwise).
    IFSKETCH_CHECK(file_.params.answer == core::Answer::kEstimator);
    views_->estimator = algo_->LoadEstimator(file_.summary, file_.params,
                                             file_.d, file_.n);
  });
  return *views_->estimator;
}

const core::FrequencyIndicator& Engine::indicator() const {
  std::call_once(views_->indicator_once, [this] {
    views_->indicator = algo_->LoadIndicator(file_.summary, file_.params,
                                             file_.d, file_.n);
  });
  return *views_->indicator;
}

bool Engine::supports_query_size(std::size_t size) const {
  return algo_->SupportsQuerySize(size, file_.params);
}

double Engine::estimate(const core::Itemset& t) const {
  return estimator().EstimateFrequency(t);
}

void Engine::estimate_many(const std::vector<core::Itemset>& ts,
                           std::vector<double>* answers) const {
  estimator().EstimateMany(ts, answers);
}

bool Engine::is_frequent(const core::Itemset& t) const {
  return indicator().IsFrequent(t);
}

void Engine::are_frequent(const std::vector<core::Itemset>& ts,
                          std::vector<bool>* answers) const {
  indicator().AreFrequent(ts, answers);
}

std::vector<mining::FrequentItemset> Engine::mine(
    const mining::AprioriOptions& options) const {
  // Apriori queries every level 1..max_size; an algorithm that only
  // answers size-k queries (RELEASE-ANSWERS) cannot drive it.
  for (std::size_t size = 1; size <= options.max_size; ++size) {
    IFSKETCH_CHECK(supports_query_size(size));
  }
  return mining::MineWithEstimatorBatched(estimator(), file_.d, options);
}

sketch::EnvelopeReport Engine::envelope() const {
  return sketch::NaiveEnvelope(file_.n, file_.d, file_.params);
}

std::string Engine::info() const {
  const sketch::EnvelopeReport env = envelope();
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "algorithm:  %s\n"
      "guarantee:  %s %s  (k=%zu, eps=%g, delta=%g)\n"
      "database:   n=%zu rows, d=%zu attributes (%zu bits)\n"
      "summary:    %zu bits (%.4f%% of the database)\n"
      "envelope:   RELEASE-DB=%zu  RELEASE-ANSWERS=%zu  SUBSAMPLE=%zu\n"
      "            Theorem-12 winner for this shape: %s (%zu bits)\n",
      file_.algorithm.c_str(), core::ToString(file_.params.scope),
      core::ToString(file_.params.answer), file_.params.k, file_.params.eps,
      file_.params.delta, file_.n, file_.d, file_.n * file_.d,
      file_.summary.size(),
      file_.n * file_.d == 0
          ? 0.0
          : 100.0 * static_cast<double>(file_.summary.size()) /
                static_cast<double>(file_.n * file_.d),
      env.release_db_bits, env.release_answers_bits, env.subsample_bits,
      env.winner.c_str(), env.winner_bits);
  return buffer;
}

}  // namespace ifsketch
