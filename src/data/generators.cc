#include "data/generators.h"

#include <cmath>

#include "util/check.h"

namespace ifsketch::data {

core::Database UniformRandom(std::size_t n, std::size_t d, double density,
                             util::Rng& rng) {
  core::Database db(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (rng.Bernoulli(density)) db.Set(i, j, true);
    }
  }
  return db;
}

core::Database PlantedItemsets(std::size_t n, std::size_t d,
                               const std::vector<Planted>& planted,
                               double background_density, util::Rng& rng) {
  core::Database db = UniformRandom(n, d, background_density, rng);
  for (const auto& p : planted) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(p.frequency)) {
        for (std::size_t a : p.attributes) {
          IFSKETCH_CHECK_LT(a, d);
          db.Set(i, a, true);
        }
      }
    }
  }
  return db;
}

core::Database PowerLawBaskets(std::size_t n, std::size_t d,
                               double zipf_exponent, double base_rate,
                               std::size_t bundles, std::size_t bundle_size,
                               double bundle_frequency, util::Rng& rng) {
  IFSKETCH_CHECK_GT(d, 0u);
  // Per-item inclusion probability: base_rate / rank^exponent.
  std::vector<double> item_prob(d);
  for (std::size_t j = 0; j < d; ++j) {
    item_prob[j] =
        base_rate / std::pow(static_cast<double>(j + 1), zipf_exponent);
  }
  core::Database db(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (rng.Bernoulli(item_prob[j])) db.Set(i, j, true);
    }
  }
  // Correlated bundles over random item groups, frequency decaying by
  // bundle rank.
  for (std::size_t b = 0; b < bundles; ++b) {
    const std::vector<std::size_t> members =
        rng.SampleWithoutReplacement(d, std::min(bundle_size, d));
    const double freq =
        bundle_frequency / std::pow(static_cast<double>(b + 1), 0.5);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(freq)) {
        for (std::size_t a : members) db.Set(i, a, true);
      }
    }
  }
  return db;
}

core::Database CensusLike(std::size_t n,
                          const std::vector<CategoricalAttribute>& attributes,
                          util::Rng& rng) {
  std::size_t d = 0;
  for (const auto& attr : attributes) {
    IFSKETCH_CHECK_GE(attr.cardinality, 1u);
    d += attr.cardinality;
  }
  core::Database db(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t offset = 0;
    for (const auto& attr : attributes) {
      std::size_t category;
      if (attr.probabilities.empty()) {
        category = rng.UniformInt(attr.cardinality);
      } else {
        IFSKETCH_CHECK_EQ(attr.probabilities.size(), attr.cardinality);
        const double u = rng.UniformDouble();
        double acc = 0.0;
        category = attr.cardinality - 1;
        for (std::size_t c = 0; c < attr.cardinality; ++c) {
          acc += attr.probabilities[c];
          if (u < acc) {
            category = c;
            break;
          }
        }
      }
      db.Set(i, offset + category, true);
      offset += attr.cardinality;
    }
  }
  return db;
}

}  // namespace ifsketch::data
