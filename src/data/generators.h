// Synthetic workload generators.
//
// The paper's motivating settings (§1.1): market-basket analysis, text
// corpora, demographic tables. These generators produce binary databases
// with those shapes -- i.i.d. noise, planted frequent itemsets, Zipfian
// "shopping cart" data with correlated bundles, and a census-like
// categorical table one-hot encoded to binary attributes.
#ifndef IFSKETCH_DATA_GENERATORS_H_
#define IFSKETCH_DATA_GENERATORS_H_

#include <vector>

#include "core/database.h"
#include "util/random.h"

namespace ifsketch::data {

/// Every entry independently 1 with probability `density`.
core::Database UniformRandom(std::size_t n, std::size_t d, double density,
                             util::Rng& rng);

/// An itemset planted into a fraction of rows.
struct Planted {
  std::vector<std::size_t> attributes;
  double frequency = 0.1;  ///< Fraction of rows forced to contain it.
};

/// Background noise of `background_density`, then each planted itemset is
/// written into an independent `frequency` fraction of rows.
core::Database PlantedItemsets(std::size_t n, std::size_t d,
                               const std::vector<Planted>& planted,
                               double background_density, util::Rng& rng);

/// Market-basket data: item popularity follows a Zipf law with the given
/// exponent (item 0 most popular); `bundles` whole itemsets are bought
/// together, each appearing in a Zipf-weighted fraction of baskets up to
/// `bundle_frequency`.
core::Database PowerLawBaskets(std::size_t n, std::size_t d,
                               double zipf_exponent, double base_rate,
                               std::size_t bundles, std::size_t bundle_size,
                               double bundle_frequency, util::Rng& rng);

/// A categorical attribute of a census-like table.
struct CategoricalAttribute {
  std::size_t cardinality = 2;          ///< Number of categories.
  std::vector<double> probabilities;    ///< Optional; uniform if empty.
};

/// One-hot encodes `attributes` into sum-of-cardinalities binary columns;
/// each row draws one category per attribute. The returned database has
/// exactly one 1 per attribute group per row.
core::Database CensusLike(std::size_t n,
                          const std::vector<CategoricalAttribute>& attributes,
                          util::Rng& rng);

}  // namespace ifsketch::data

#endif  // IFSKETCH_DATA_GENERATORS_H_
