#include "data/io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace ifsketch::data {

void WriteTransactions(std::ostream& out, const core::Database& db) {
  out << db.num_columns() << "\n";
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    bool first = true;
    for (std::size_t a : db.Row(i).SetBits()) {
      if (!first) out << ' ';
      out << a;
      first = false;
    }
    out << "\n";
  }
}

std::optional<core::Database> ReadTransactions(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  std::size_t d = 0;
  {
    std::istringstream header(line);
    long long dv = -1;
    if (!(header >> dv) || dv <= 0) return std::nullopt;
    d = static_cast<std::size_t>(dv);
  }
  std::vector<util::BitVector> rows;
  while (std::getline(in, line)) {
    util::BitVector row(d);
    std::istringstream ls(line);
    long long a;
    while (ls >> a) {
      if (a < 0 || static_cast<std::size_t>(a) >= d) return std::nullopt;
      row.Set(static_cast<std::size_t>(a), true);
    }
    if (!ls.eof()) return std::nullopt;  // non-numeric garbage
    rows.push_back(std::move(row));
  }
  core::Database db = core::Database::FromRows(std::move(rows));
  if (db.num_rows() == 0) {
    // Preserve the width even for empty databases.
    core::Database empty(0, d);
    return empty;
  }
  return db;
}

void WriteDense(std::ostream& out, const core::Database& db) {
  out << db.num_rows() << ' ' << db.num_columns() << "\n";
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    out << db.Row(i).ToString() << "\n";
  }
}

std::optional<core::Database> ReadDense(std::istream& in) {
  std::size_t n = 0, d = 0;
  if (!(in >> n >> d)) return std::nullopt;
  std::string line;
  std::getline(in, line);  // consume the header's newline
  std::vector<util::BitVector> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line) || line.size() != d) return std::nullopt;
    for (char c : line) {
      if (c != '0' && c != '1') return std::nullopt;
    }
    rows.push_back(util::BitVector::FromString(line));
  }
  if (n == 0) return core::Database(0, d);
  return core::Database::FromRows(std::move(rows));
}

bool SaveTransactionsFile(const std::string& path,
                          const core::Database& db) {
  std::ofstream out(path);
  if (!out) return false;
  WriteTransactions(out, db);
  return static_cast<bool>(out);
}

std::optional<core::Database> LoadTransactionsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadTransactions(in);
}

}  // namespace ifsketch::data
