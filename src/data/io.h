// Database file I/O.
//
// Two interchange formats:
//  - transaction format (market-basket convention): first line "d", then
//    one line per row listing the indices of its 1-attributes, space
//    separated (possibly empty lines for empty rows);
//  - dense format: first line "n d", then n lines of d '0'/'1' chars.
// Both are line-oriented text so datasets can be produced and inspected
// with standard tools.
#ifndef IFSKETCH_DATA_IO_H_
#define IFSKETCH_DATA_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "core/database.h"

namespace ifsketch::data {

/// Writes `db` in transaction format.
void WriteTransactions(std::ostream& out, const core::Database& db);

/// Parses transaction format. Returns nullopt on malformed input
/// (negative / out-of-range indices, missing header).
std::optional<core::Database> ReadTransactions(std::istream& in);

/// Writes `db` in dense 0/1 format.
void WriteDense(std::ostream& out, const core::Database& db);

/// Parses dense format. Returns nullopt on malformed input.
std::optional<core::Database> ReadDense(std::istream& in);

/// Convenience file wrappers. Return false / nullopt on I/O failure.
bool SaveTransactionsFile(const std::string& path, const core::Database& db);
std::optional<core::Database> LoadTransactionsFile(const std::string& path);

}  // namespace ifsketch::data

#endif  // IFSKETCH_DATA_IO_H_
