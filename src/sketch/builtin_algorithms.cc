#include "sketch/builtin_algorithms.h"

#include <memory>
#include <mutex>

#include "sketch/importance_sample.h"
#include "sketch/median_boost.h"
#include "sketch/release_answers.h"
#include "sketch/release_db.h"
#include "sketch/streaming.h"
#include "sketch/subsample.h"

namespace ifsketch::sketch {

void RegisterBuiltinAlgorithms(core::SketchRegistry& registry) {
  registry.Register("RELEASE-DB",
                    [] { return std::make_unique<ReleaseDbSketch>(); });
  registry.Register("RELEASE-ANSWERS",
                    [] { return std::make_unique<ReleaseAnswersSketch>(); });
  registry.Register("SUBSAMPLE",
                    [] { return std::make_unique<SubsampleSketch>(); });
  registry.Register("SUBSAMPLE-WOR", [] {
    return std::make_unique<SubsampleWithoutReplacementSketch>();
  });
  registry.Register("IMPORTANCE-SAMPLE", [] {
    return std::make_unique<ImportanceSampleSketch>();
  });
  registry.Register("STREAM-SUBSAMPLE",
                    [] { return std::make_unique<StreamSubsampleSketch>(); });
  registry.Register("STREAM-STRATIFIED", [] {
    return std::make_unique<StreamStratifiedSketch>();
  });
  registry.Register("STREAM-IMPORTANCE", [] {
    return std::make_unique<StreamImportanceSketch>();
  });
  registry.RegisterCombinator(
      "MEDIAN-BOOST", [](std::unique_ptr<core::SketchAlgorithm> inner) {
        return std::make_unique<MedianBoostSketch>(std::move(inner));
      });
}

core::SketchRegistry& BuiltinRegistry() {
  static std::once_flag once;
  std::call_once(once,
                 [] { RegisterBuiltinAlgorithms(core::SketchRegistry::Default()); });
  return core::SketchRegistry::Default();
}

}  // namespace ifsketch::sketch
