// Importance (weighted) row sampling -- the paper's future-work direction.
//
// The conclusion (§5) notes that on structured databases with non-uniform
// query loads, importance sampling is the natural candidate for beating
// uniform sampling, citing follow-up work of Lang-Liberty-Shmakov. This
// sketch samples rows with probability proportional to a row weight
// (default: the row's popcount, which up-weights the dense rows that
// support large itemsets) and answers with the Horvitz-Thompson
// estimator. It is an *extension*, not a paper algorithm: the Lemma 9
// worst-case guarantee does not transfer (the lower bounds explain why a
// universally better sketch is impossible), but the e11 ablation shows
// the variance win on skewed workloads the paper anticipates.
#ifndef IFSKETCH_SKETCH_IMPORTANCE_SAMPLE_H_
#define IFSKETCH_SKETCH_IMPORTANCE_SAMPLE_H_

#include <functional>

#include "core/sketch.h"

namespace ifsketch::sketch {

/// Weighted-with-replacement row sampling, Horvitz-Thompson queries.
class ImportanceSampleSketch : public core::SketchAlgorithm {
 public:
  /// Maps a row to a positive weight. Must be a deterministic function of
  /// the row bits (Q re-derives it from the stored rows).
  using WeightFn = std::function<double(const util::BitVector&)>;

  /// Default weight: popcount + 1.
  ImportanceSampleSketch();
  explicit ImportanceSampleSketch(WeightFn weight);

  std::string name() const override { return "IMPORTANCE-SAMPLE"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  /// Same sample counts as SUBSAMPLE (apples-to-apples size comparisons;
  /// the guarantee itself is workload-dependent, see file comment).
  static std::size_t SampleCount(const core::SketchParams& params,
                                 std::size_t d);

 private:
  /// Bits per stored mean-weight field (fixed-point).
  static constexpr int kWeightBits = 64;

  WeightFn weight_;
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_IMPORTANCE_SAMPLE_H_
