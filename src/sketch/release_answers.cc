#include "sketch/release_answers.h"

#include <cmath>

#include "util/bitio.h"
#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::sketch {
namespace {

// RELEASE-ANSWERS requires materializing C(d,k) answers; refuse absurd
// shapes up front rather than allocating forever.
constexpr std::uint64_t kMaxStoredAnswers = std::uint64_t{1} << 28;

std::uint64_t NumItemsets(std::size_t d, std::size_t k) {
  const std::uint64_t c = util::Binomial(d, k);
  IFSKETCH_CHECK_LT(c, kMaxStoredAnswers);
  return c;
}

/// Looks answers up by the queried itemset's colex rank. Only size-k
/// queries exist in the table; an off-k itemset's rank would alias into
/// some other itemset's slot and return its answer, so the size is
/// checked loudly (callers gate on SupportsQuerySize).
class AnswerTableEstimator : public core::FrequencyEstimator {
 public:
  AnswerTableEstimator(std::vector<double> answers, std::size_t d,
                       std::size_t k)
      : answers_(std::move(answers)), d_(d), k_(k) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    IFSKETCH_CHECK_EQ(t.size(), k_);
    const std::uint64_t rank = util::RankSubset(t.Attributes(), d_);
    IFSKETCH_CHECK_LT(rank, answers_.size());
    return answers_[rank];
  }

 private:
  std::vector<double> answers_;
  std::size_t d_;
  std::size_t k_;
};

class AnswerTableIndicator : public core::FrequencyIndicator {
 public:
  AnswerTableIndicator(util::BitVector bits, std::size_t d, std::size_t k)
      : bits_(std::move(bits)), d_(d), k_(k) {}

  bool IsFrequent(const core::Itemset& t) const override {
    IFSKETCH_CHECK_EQ(t.size(), k_);
    const std::uint64_t rank = util::RankSubset(t.Attributes(), d_);
    IFSKETCH_CHECK_LT(rank, bits_.size());
    return bits_.Get(rank);
  }

 private:
  util::BitVector bits_;
  std::size_t d_;
  std::size_t k_;
};

}  // namespace

int ReleaseAnswersSketch::FrequencyBits(double eps) {
  IFSKETCH_CHECK(eps > 0.0 && eps <= 1.0);
  const int bits =
      static_cast<int>(std::ceil(std::log2(1.0 / eps))) + 1;
  return bits < 1 ? 1 : (bits > 62 ? 62 : bits);
}

util::BitVector ReleaseAnswersSketch::Build(const core::Database& db,
                                            const core::SketchParams& params,
                                            util::Rng& /*rng*/) const {
  const std::size_t d = db.num_columns();
  NumItemsets(d, params.k);  // shape sanity check
  util::BitWriter w;
  std::vector<std::size_t> attrs(params.k);
  for (std::size_t i = 0; i < params.k; ++i) attrs[i] = i;
  const int fbits = FrequencyBits(params.eps);
  // Colex enumeration order matches RankSubset, so lookups are direct.
  do {
    const double f = db.Frequency(core::Itemset(d, attrs));
    if (params.answer == core::Answer::kIndicator) {
      // Store the exact decision bit: 1 iff f_T > eps/2 (any rule that is
      // 1 above eps and 0 below eps/2 is valid; exactness costs nothing).
      w.WriteBit(f > params.eps / 2);
    } else {
      w.WriteQuantized(f, fbits);
    }
  } while (util::NextSubset(attrs, d));
  return w.Finish();
}

std::unique_ptr<core::FrequencyEstimator> ReleaseAnswersSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& params,
    std::size_t d, std::size_t /*n*/) const {
  IFSKETCH_CHECK(params.answer == core::Answer::kEstimator);
  const std::uint64_t count = NumItemsets(d, params.k);
  const int fbits = FrequencyBits(params.eps);
  util::BitReader r(summary);
  std::vector<double> answers(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    answers[i] = r.ReadQuantized(fbits);
  }
  return std::make_unique<AnswerTableEstimator>(std::move(answers), d,
                                                params.k);
}

std::unique_ptr<core::FrequencyIndicator> ReleaseAnswersSketch::LoadIndicator(
    const util::BitVector& summary, const core::SketchParams& params,
    std::size_t d, std::size_t n) const {
  if (params.answer == core::Answer::kEstimator) {
    return SketchAlgorithm::LoadIndicator(summary, params, d, n);
  }
  const std::uint64_t count = NumItemsets(d, params.k);
  IFSKETCH_CHECK_EQ(summary.size(), count);
  return std::make_unique<AnswerTableIndicator>(summary, d, params.k);
}

std::size_t ReleaseAnswersSketch::PredictedSizeBits(
    std::size_t /*n*/, std::size_t d, const core::SketchParams& params) const {
  const std::uint64_t count = util::Binomial(d, params.k);
  if (params.answer == core::Answer::kIndicator) return count;
  return count * static_cast<std::uint64_t>(FrequencyBits(params.eps));
}

}  // namespace ifsketch::sketch
