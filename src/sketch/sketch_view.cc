#include "sketch/sketch_view.h"

#include <cstring>

#include "sketch/arena_layout.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace ifsketch::sketch {
namespace {

// Bounds-checked forward reader over the image. Mirrors the stream
// cursor in sketch_file.cc, but nothing is consumed: fields are read by
// memcpy at a running offset, so validation never forms an unaligned or
// out-of-bounds pointer.
class ImageCursor {
 public:
  ImageCursor(const unsigned char* data, std::size_t size,
              SketchError* error)
      : data_(data), size_(size), error_(error) {}

  std::uint64_t offset() const { return offset_; }

  bool Fail(std::uint64_t at, std::string message) {
    if (error_ != nullptr) {
      error_->message = std::move(message);
      error_->offset = at;
    }
    return false;
  }

  bool Read(void* dst, std::uint64_t len, const char* what) {
    if (len > size_ - offset_) {  // offset_ <= size_ is an invariant
      return Fail(offset_, std::string(what) + ": image truncated");
    }
    if (len > 0) std::memcpy(dst, data_ + offset_, len);
    offset_ += len;
    return true;
  }

  template <typename T>
  bool Get(T& value, const char* what) {
    return Read(&value, sizeof(T), what);
  }

  /// Advances past `len` bytes without copying or inspecting them (for
  /// section bodies whose content is validated in place via WordsAt).
  bool Advance(std::uint64_t len, const char* what) {
    if (len > size_ - offset_) {
      return Fail(offset_, std::string(what) + ": image truncated");
    }
    offset_ += len;
    return true;
  }

  bool SkipZeros(std::uint64_t len, const char* what) {
    const std::uint64_t at = offset_;
    if (len > size_ - offset_) {
      return Fail(at, std::string(what) + ": image truncated");
    }
    for (std::uint64_t i = 0; i < len; ++i) {
      if (data_[at + i] != 0) {
        return Fail(at + i, std::string(what) + ": nonzero padding byte");
      }
    }
    offset_ += len;
    return true;
  }

  /// The aligned word pointer at `offset` (which validation has already
  /// required to be a multiple of arena::kSectionAlign, so alignment
  /// follows from the 8-byte-aligned image base).
  const std::uint64_t* WordsAt(std::uint64_t offset) const {
    return reinterpret_cast<const std::uint64_t*>(data_ + offset);
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  SketchError* error_;
  std::uint64_t offset_ = 0;
};

}  // namespace

std::uint16_t PeekSketchVersion(const unsigned char* data, std::size_t size) {
  if (size < 6 || std::memcmp(data, arena_internal::kMagic, 4) != 0) {
    return 0;
  }
  std::uint16_t version = 0;
  std::memcpy(&version, data + 4, 2);
  if (version != arena::kVersionLegacy && version != arena::kVersionArena) {
    return 0;
  }
  return version;
}

std::optional<SketchView> ViewSketchImage(const unsigned char* data,
                                          std::size_t size,
                                          SketchError* error) {
  IFSKETCH_CHECK(data != nullptr || size == 0);
  IFSKETCH_CHECK_EQ(reinterpret_cast<std::uintptr_t>(data) %
                        alignof(std::uint64_t),
                    0u);
  ImageCursor cursor(data, size, error);

  // The header parse (magic through summary bit count, with every field
  // validation) is shared with the stream parser in arena_layout.h;
  // only the version policy differs -- an image is view-able solely at
  // v2, so v1 gets its own routing error here.
  std::uint16_t version = 0;
  if (!arena_internal::ReadMagicAndVersion(cursor, &version)) {
    return std::nullopt;
  }
  if (version == arena::kVersionLegacy) {
    cursor.Fail(arena_internal::kVersionOffset,
                "legacy v1 image (no arena sections; use the copying path)");
    return std::nullopt;
  }
  if (version != arena::kVersionArena) {
    cursor.Fail(arena_internal::kVersionOffset, "unsupported format version");
    return std::nullopt;
  }

  SketchView view;
  SketchFile& file = view.file;
  std::uint64_t bits = 0;
  if (!arena_internal::ReadHeaderAfterVersion(cursor, &file, &bits)) {
    return std::nullopt;
  }
  file.version = version;
  const std::uint64_t d = file.d;

  // ---- section table: the entry read and every structural decision
  // live in arena_layout.h, so this validator and the stream parser
  // accept exactly the same tables by construction (and the
  // bidirectional image fuzzer double-checks it at test time).
  std::uint32_t section_count = 0;
  std::uint64_t count_at = 0;
  arena_internal::SectionEntry sections[arena::kMaxSections];
  if (!arena_internal::ReadSectionEntries(cursor, &section_count, &count_at,
                                          sections)) {
    return std::nullopt;
  }
  arena_internal::ArenaLayout layout;
  std::uint64_t fail_at = 0;
  const char* fail_message = nullptr;
  if (!arena_internal::ValidateSectionTable(sections, section_count,
                                            count_at, cursor.offset(), bits,
                                            d, &layout, &fail_at,
                                            &fail_message)) {
    cursor.Fail(fail_at, fail_message);
    return std::nullopt;
  }
  // In-place extra: the image must end exactly where the last section
  // does, or exactly arena::kTrailerBytes later carrying a valid
  // integrity trailer (the stream reader enforces the same two-ended
  // rule after the last section, so the acceptance sets still agree).
  // Validating the trailer here costs one O(file) CRC pass -- the price
  // a checksummed file opts into even on the zero-copy path.
  if (layout.end_offset != size) {
    if (size != layout.end_offset + arena::kTrailerBytes) {
      cursor.Fail(count_at, "image size does not match section table");
      return std::nullopt;
    }
    if (!arena_internal::ValidateTrailer(
            data + layout.end_offset, layout.end_offset,
            util::Crc32c(data, static_cast<std::size_t>(layout.end_offset)),
            &fail_at, &fail_message)) {
      cursor.Fail(fail_at, fail_message);
      return std::nullopt;
    }
  }

  // ---- summary section: zero padding up to it, exact word count,
  // trailing bits zero; then the view is just a pointer.
  const arena_internal::SectionEntry& summary_section = layout.summary;
  if (!cursor.SkipZeros(summary_section.offset - cursor.offset(),
                        "pre-section padding")) {
    return std::nullopt;
  }
  const std::uint64_t* summary_words = cursor.WordsAt(summary_section.offset);
  if ((bits & 63) != 0 &&
      (summary_words[summary_section.words - 1] >> (bits & 63)) != 0) {
    cursor.Fail(summary_section.offset + (summary_section.words - 1) * 8,
                "summary trailing bits not zero");
    return std::nullopt;
  }
  file.summary = util::BitVector::View(
      summary_section.words == 0 ? nullptr : summary_words,
      static_cast<std::size_t>(bits));

  // ---- optional column section.
  if (layout.has_columns) {
    const arena_internal::SectionEntry& column_section = layout.columns;
    const std::uint64_t rows = layout.rows;
    const std::uint64_t col_words = layout.col_words;
    const std::uint64_t stride = layout.stride;
    // Step over the summary words (validated in place above) and check
    // the inter-section padding with the same helper the summary used,
    // so the two parsers' padding diagnostics cannot drift.
    if (!cursor.Advance(summary_section.words * 8, "summary words") ||
        !cursor.SkipZeros(column_section.offset - cursor.offset(),
                          "pre-section padding")) {
      return std::nullopt;
    }
    const std::uint64_t* column_words = cursor.WordsAt(column_section.offset);
    for (std::uint64_t j = 0; j < d; ++j) {
      const std::uint64_t* column = column_words + j * stride;
      if ((rows & 63) != 0 && col_words > 0 &&
          (column[col_words - 1] >> (rows & 63)) != 0) {
        cursor.Fail(column_section.offset + (j * stride + col_words - 1) * 8,
                    "column trailing bits not zero");
        return std::nullopt;
      }
      for (std::uint64_t w = col_words; w < stride; ++w) {
        if (column[w] != 0) {
          cursor.Fail(column_section.offset + (j * stride + w) * 8,
                      "nonzero column padding word");
          return std::nullopt;
        }
      }
    }
    view.columns = ArenaColumns{column_words,
                                static_cast<std::size_t>(rows),
                                static_cast<std::size_t>(d),
                                static_cast<std::size_t>(stride)};
  }
  return view;
}

std::optional<SketchView> ViewSketchFile(const std::string& path,
                                         SketchError* error) {
  std::string open_error;
  auto mapping = util::MappedFile::Open(path, &open_error);
  if (mapping == nullptr) {
    if (error != nullptr) {
      error->message = open_error;
      error->offset = 0;
    }
    return std::nullopt;
  }
  auto view = ViewSketchImage(mapping->data(), mapping->size(), error);
  if (!view.has_value()) return std::nullopt;
  view->mapping = std::move(mapping);
  return view;
}

}  // namespace ifsketch::sketch
