#include "sketch/streaming.h"

#include <bit>

#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {
namespace {

/// StreamingBuilder facade over the existing ReservoirBuilder (which
/// predates the interface and keeps its public name).
class SubsampleStreamBuilder : public StreamingBuilder {
 public:
  SubsampleStreamBuilder(std::size_t d, const core::SketchParams& params,
                         util::Rng& rng)
      : inner_(d, params, rng) {}

  void Observe(const util::BitVector& row) override { inner_.Observe(row); }
  std::size_t rows_seen() const override { return inner_.rows_seen(); }
  util::BitVector Summary() const override { return inner_.Finish(); }

  util::BitVector SaveState() const override {
    util::BitWriter w;
    inner_.SaveState(&w);
    return w.Finish();
  }

  bool RestoreState(const util::BitVector& state) override {
    util::BitReader r(state);
    return inner_.RestoreState(&r) && r.Remaining() == 0;
  }

 private:
  ReservoirBuilder inner_;
};

/// Weighted size-1 reservoirs with Misra-Gries gating (see
/// StreamImportanceSketch). Slot i keeps the incoming row with
/// probability w/W where W is the cumulative weight, so after any prefix
/// P(slot = row j) = w_j / W -- the telescoping classic.
class ImportanceStreamBuilder : public StreamingBuilder {
 public:
  ImportanceStreamBuilder(std::size_t d, const core::SketchParams& params,
                          util::Rng& rng)
      : d_(d),
        slots_(StreamImportanceSketch::SampleCount(params, d)),
        hot_(StreamImportanceSketch::kHotCounters),
        rng_(&rng) {
    for (auto& slot : slots_) slot.row = util::BitVector(d);
  }

  void Observe(const util::BitVector& row) override {
    IFSKETCH_CHECK_EQ(row.size(), d_);
    hot_.ObserveRow(row);
    double weight = 1.0;
    for (std::size_t a : row.SetBits()) {
      if (hot_.Estimate(a) * StreamImportanceSketch::kHotFraction >=
          hot_.items_seen()) {
        weight += 1.0;
      }
    }
    total_weight_ += weight;
    ++rows_seen_;
    for (auto& slot : slots_) {
      if (rng_->UniformDouble() * total_weight_ < weight) {
        slot.row = row;
        slot.weight = weight;
      }
    }
  }

  std::size_t rows_seen() const override { return rows_seen_; }

  util::BitVector Summary() const override {
    IFSKETCH_CHECK_GT(rows_seen_, 0u);
    util::BitWriter w;
    w.WriteUint(std::bit_cast<std::uint64_t>(total_weight_), 64);
    for (const auto& slot : slots_) {
      w.WriteUint(std::bit_cast<std::uint64_t>(slot.weight), 64);
      w.WriteBits(slot.row);
    }
    return w.Finish();
  }

  util::BitVector SaveState() const override {
    util::BitWriter w;
    w.WriteUint(rows_seen_, 64);
    w.WriteUint(std::bit_cast<std::uint64_t>(total_weight_), 64);
    for (const auto& slot : slots_) {
      w.WriteUint(std::bit_cast<std::uint64_t>(slot.weight), 64);
      w.WriteBits(slot.row);
    }
    hot_.SaveState(&w);
    return w.Finish();
  }

  bool RestoreState(const util::BitVector& state) override {
    util::BitReader r(state);
    if (r.Remaining() < 128 + slots_.size() * (64 + d_)) return false;
    rows_seen_ = static_cast<std::size_t>(r.ReadUint(64));
    total_weight_ = std::bit_cast<double>(r.ReadUint(64));
    for (auto& slot : slots_) {
      slot.weight = std::bit_cast<double>(r.ReadUint(64));
      slot.row = r.ReadBits(d_);
    }
    return hot_.RestoreState(&r) && r.Remaining() == 0;
  }

 private:
  struct Slot {
    util::BitVector row;
    double weight = 1.0;
  };

  std::size_t d_;
  std::size_t rows_seen_ = 0;
  double total_weight_ = 0.0;
  std::vector<Slot> slots_;
  stream::MisraGries hot_;
  util::Rng* rng_;
};

/// Proportional recombination over the decoded strata: with support_h =
/// |{slots of stratum h containing T}|, f = sum_h count_h * support_h /
/// (total * c). Every term is an exact small integer product, summed in
/// ascending stratum order and divided once, so scalar and batched
/// answers (the default EstimateMany is a fan-out of this method) are
/// bit-identical, and f <= 1 holds exactly (numerator <= total * c).
class StratifiedEstimator : public core::FrequencyEstimator {
 public:
  StratifiedEstimator(std::vector<std::uint64_t> counts,
                      std::vector<std::vector<util::BitVector>> rows)
      : counts_(std::move(counts)), rows_(std::move(rows)) {
    for (std::uint64_t c : counts_) total_ += static_cast<double>(c);
  }

  double EstimateFrequency(const core::Itemset& t) const override {
    if (total_ == 0.0) return 0.0;
    const double slots = static_cast<double>(rows_.empty()
                                                 ? 1
                                                 : rows_.front().size());
    double acc = 0.0;
    for (std::size_t h = 0; h < counts_.size(); ++h) {
      if (counts_[h] == 0) continue;
      std::size_t support = 0;
      for (const auto& row : rows_[h]) {
        if (t.ContainedIn(row)) ++support;
      }
      acc += static_cast<double>(counts_[h]) * static_cast<double>(support);
    }
    return acc / (total_ * slots);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::vector<std::vector<util::BitVector>> rows_;
  double total_ = 0.0;
};

/// Horvitz-Thompson over the decoded weighted sample: f = (1/s)
/// sum_slots I{T in row_i} * W / (n * w_i), coefficients evaluated once
/// at load time, accumulated in ascending slot order, clamped to [0,1].
class StreamHtEstimator : public core::FrequencyEstimator {
 public:
  StreamHtEstimator(std::vector<util::BitVector> rows,
                    std::vector<double> coefficients)
      : rows_(std::move(rows)), coefficients_(std::move(coefficients)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    const std::size_t s = rows_.size();
    if (s == 0) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      if (t.ContainedIn(rows_[i])) acc += coefficients_[i];
    }
    const double est = acc / static_cast<double>(s);
    return est < 0.0 ? 0.0 : (est > 1.0 ? 1.0 : est);
  }

 private:
  std::vector<util::BitVector> rows_;
  std::vector<double> coefficients_;
};

}  // namespace

util::BitVector ReplayBuild(const StreamingSketch& algorithm,
                            const core::Database& db,
                            const core::SketchParams& params,
                            util::Rng& rng) {
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  auto builder = algorithm.NewBuilder(db.num_columns(), params, rng);
  for (std::size_t i = 0; i < db.num_rows(); ++i) builder->Observe(db.Row(i));
  return builder->Summary();
}

// ------------------------------------------------------ STREAM-SUBSAMPLE

util::BitVector StreamSubsampleSketch::Build(const core::Database& db,
                                             const core::SketchParams& params,
                                             util::Rng& rng) const {
  return ReplayBuild(*this, db, params, rng);
}

std::unique_ptr<StreamingBuilder> StreamSubsampleSketch::NewBuilder(
    std::size_t d, const core::SketchParams& params, util::Rng& rng) const {
  return std::make_unique<SubsampleStreamBuilder>(d, params, rng);
}

// ----------------------------------------------------- STREAM-STRATIFIED

StratifiedSampleBuilder::StratifiedSampleBuilder(
    std::size_t d, const core::SketchParams& params, util::Rng& rng)
    : d_(d), strata_(StreamStratifiedSketch::kStrata), rng_(&rng) {
  const std::size_t slots =
      StreamStratifiedSketch::SlotsPerStratum(params, d);
  for (auto& stratum : strata_) {
    stratum.slots.assign(slots, util::BitVector(d));
  }
}

void StratifiedSampleBuilder::Observe(const util::BitVector& row) {
  IFSKETCH_CHECK_EQ(row.size(), d_);
  ++rows_seen_;
  Stratum& stratum =
      strata_[StreamStratifiedSketch::StratumOf(row.Count(), d_)];
  ++stratum.count;
  // Each slot is an independent size-1 reservoir over the stratum's
  // sub-stream (keep the current row with probability 1/count).
  for (auto& slot : stratum.slots) {
    if (rng_->UniformInt(stratum.count) == 0) slot = row;
  }
}

util::BitVector StratifiedSampleBuilder::Summary() const {
  IFSKETCH_CHECK_GT(rows_seen_, 0u);
  util::BitWriter w;
  for (const auto& stratum : strata_) {
    w.WriteUint(stratum.count, 64);
    for (const auto& slot : stratum.slots) w.WriteBits(slot);
  }
  return w.Finish();
}

util::BitVector StratifiedSampleBuilder::SaveState() const {
  util::BitWriter w;
  w.WriteUint(rows_seen_, 64);
  for (const auto& stratum : strata_) {
    w.WriteUint(stratum.count, 64);
    for (const auto& slot : stratum.slots) w.WriteBits(slot);
  }
  return w.Finish();
}

bool StratifiedSampleBuilder::RestoreState(const util::BitVector& state) {
  std::size_t want = 64;
  for (const auto& stratum : strata_) {
    want += 64 + stratum.slots.size() * d_;
  }
  if (state.size() != want) return false;
  util::BitReader r(state);
  const std::uint64_t rows_seen = r.ReadUint(64);
  std::uint64_t total = 0;
  std::vector<Stratum> strata = strata_;
  for (auto& stratum : strata) {
    stratum.count = r.ReadUint(64);
    total += stratum.count;
    for (auto& slot : stratum.slots) slot = r.ReadBits(d_);
  }
  if (total != rows_seen) return false;  // counts must tile the stream
  rows_seen_ = static_cast<std::size_t>(rows_seen);
  strata_ = std::move(strata);
  return true;
}

std::size_t StreamStratifiedSketch::SlotsPerStratum(
    const core::SketchParams& params, std::size_t d) {
  const std::size_t total = SubsampleSketch::SampleCount(params, d);
  return (total + kStrata - 1) / kStrata;
}

std::size_t StreamStratifiedSketch::StratumOf(std::size_t popcount,
                                              std::size_t d) {
  const std::size_t bucket = popcount * kStrata / (d + 1);
  return bucket < kStrata - 1 ? bucket : kStrata - 1;
}

util::BitVector StreamStratifiedSketch::Build(const core::Database& db,
                                              const core::SketchParams& params,
                                              util::Rng& rng) const {
  return ReplayBuild(*this, db, params, rng);
}

std::unique_ptr<core::FrequencyEstimator> StreamStratifiedSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& params,
    std::size_t d, std::size_t /*n*/) const {
  const std::size_t slots = SlotsPerStratum(params, d);
  IFSKETCH_CHECK_EQ(summary.size(), kStrata * (64 + slots * d));
  util::BitReader r(summary);
  std::vector<std::uint64_t> counts;
  std::vector<std::vector<util::BitVector>> rows(kStrata);
  counts.reserve(kStrata);
  for (std::size_t h = 0; h < kStrata; ++h) {
    counts.push_back(r.ReadUint(64));
    rows[h].reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) rows[h].push_back(r.ReadBits(d));
  }
  return std::make_unique<StratifiedEstimator>(std::move(counts),
                                               std::move(rows));
}

std::size_t StreamStratifiedSketch::PredictedSizeBits(
    std::size_t /*n*/, std::size_t d, const core::SketchParams& params) const {
  return kStrata * (64 + SlotsPerStratum(params, d) * d);
}

std::unique_ptr<StreamingBuilder> StreamStratifiedSketch::NewBuilder(
    std::size_t d, const core::SketchParams& params, util::Rng& rng) const {
  return std::make_unique<StratifiedSampleBuilder>(d, params, rng);
}

// ----------------------------------------------------- STREAM-IMPORTANCE

std::size_t StreamImportanceSketch::SampleCount(
    const core::SketchParams& params, std::size_t d) {
  return SubsampleSketch::SampleCount(params, d);
}

util::BitVector StreamImportanceSketch::Build(const core::Database& db,
                                              const core::SketchParams& params,
                                              util::Rng& rng) const {
  return ReplayBuild(*this, db, params, rng);
}

std::unique_ptr<core::FrequencyEstimator> StreamImportanceSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& params,
    std::size_t d, std::size_t n) const {
  const std::size_t s = SampleCount(params, d);
  IFSKETCH_CHECK_EQ(summary.size(), 64 + s * (64 + d));
  util::BitReader r(summary);
  const double total_weight = std::bit_cast<double>(r.ReadUint(64));
  std::vector<util::BitVector> rows;
  std::vector<double> coefficients;
  rows.reserve(s);
  coefficients.reserve(s);
  const double denominator = static_cast<double>(n);
  for (std::size_t i = 0; i < s; ++i) {
    const double weight = std::bit_cast<double>(r.ReadUint(64));
    coefficients.push_back(
        denominator > 0.0 ? total_weight / (denominator * weight) : 0.0);
    rows.push_back(r.ReadBits(d));
  }
  return std::make_unique<StreamHtEstimator>(std::move(rows),
                                             std::move(coefficients));
}

std::size_t StreamImportanceSketch::PredictedSizeBits(
    std::size_t /*n*/, std::size_t d, const core::SketchParams& params) const {
  return 64 + SampleCount(params, d) * (64 + d);
}

std::unique_ptr<StreamingBuilder> StreamImportanceSketch::NewBuilder(
    std::size_t d, const core::SketchParams& params, util::Rng& rng) const {
  return std::make_unique<ImportanceStreamBuilder>(d, params, rng);
}

}  // namespace ifsketch::sketch
