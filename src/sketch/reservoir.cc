#include "sketch/reservoir.h"

#include "sketch/subsample.h"
#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {

ReservoirBuilder::ReservoirBuilder(std::size_t d,
                                   const core::SketchParams& params,
                                   util::Rng& rng)
    : d_(d),
      slots_(SubsampleSketch::SampleCount(params, d), util::BitVector(d)),
      rng_(&rng) {}

void ReservoirBuilder::Observe(const util::BitVector& row) {
  IFSKETCH_CHECK_EQ(row.size(), d_);
  ++rows_seen_;
  // Slot i keeps the current row with probability 1/rows_seen_,
  // independently of the other slots (s parallel size-1 reservoirs).
  for (auto& slot : slots_) {
    if (rng_->UniformInt(rows_seen_) == 0) slot = row;
  }
}

util::BitVector ReservoirBuilder::Finish() const {
  IFSKETCH_CHECK_GT(rows_seen_, 0u);
  util::BitWriter w;
  for (const auto& slot : slots_) w.WriteBits(slot);
  return w.Finish();
}

void ReservoirBuilder::SaveState(util::BitWriter* w) const {
  w->WriteUint(rows_seen_, 64);
  for (const auto& slot : slots_) w->WriteBits(slot);
}

bool ReservoirBuilder::RestoreState(util::BitReader* r) {
  if (r->Remaining() < 64 + slots_.size() * d_) return false;
  rows_seen_ = static_cast<std::size_t>(r->ReadUint(64));
  for (auto& slot : slots_) slot = r->ReadBits(d_);
  return true;
}

}  // namespace ifsketch::sketch
