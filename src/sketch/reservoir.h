// Single-pass streaming construction of the SUBSAMPLE summary.
//
// The paper notes (§1.2) that streaming algorithms for frequent itemsets
// were never shown to beat row sampling; this builder shows sampling
// itself is trivially streamable. It maintains s independent size-1
// reservoirs, so after observing any prefix the slots are i.i.d. uniform
// rows of that prefix — exactly SUBSAMPLE's with-replacement distribution.
#ifndef IFSKETCH_SKETCH_RESERVOIR_H_
#define IFSKETCH_SKETCH_RESERVOIR_H_

#include <vector>

#include "core/sketch.h"
#include "util/bitio.h"

namespace ifsketch::sketch {

/// Streaming row sampler producing a SUBSAMPLE-compatible summary.
class ReservoirBuilder {
 public:
  /// `d` is the row width; the slot count is SubsampleSketch::SampleCount
  /// for `params`.
  ReservoirBuilder(std::size_t d, const core::SketchParams& params,
                   util::Rng& rng);

  /// Observes one stream row (width d).
  void Observe(const util::BitVector& row);

  /// Rows observed so far.
  std::size_t rows_seen() const { return rows_seen_; }

  /// Number of reservoir slots s.
  std::size_t slot_count() const { return slots_.size(); }

  /// Serializes the current reservoir into a SUBSAMPLE summary
  /// (s rows * d bits). Precondition: at least one row observed.
  util::BitVector Finish() const;

  /// Appends the complete builder state (rows_seen + every slot) to `w`
  /// for checkpoint/recovery; the paired Rng is checkpointed separately.
  void SaveState(util::BitWriter* w) const;

  /// Restores a SaveState snapshot from `r`; false when the remaining
  /// bits are too short for this builder's shape.
  bool RestoreState(util::BitReader* r);

 private:
  std::size_t d_;
  std::size_t rows_seen_ = 0;
  std::vector<util::BitVector> slots_;
  util::Rng* rng_;
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_RESERVOIR_H_
