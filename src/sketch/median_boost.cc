#include "sketch/median_boost.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::sketch {
namespace {

/// Answers with the median over the loaded copies. Batched queries are
/// forwarded to each copy's batched path (so e.g. a SUBSAMPLE inner copy
/// transposes its sample once for the whole batch); the median of the
/// same per-copy values is the same answer, scalar or batched.
class MedianEstimator : public core::FrequencyEstimator {
 public:
  explicit MedianEstimator(
      std::vector<std::unique_ptr<core::FrequencyEstimator>> copies)
      : copies_(std::move(copies)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    std::vector<double> answers;
    answers.reserve(copies_.size());
    for (const auto& c : copies_) answers.push_back(c->EstimateFrequency(t));
    std::nth_element(answers.begin(), answers.begin() + answers.size() / 2,
                     answers.end());
    return answers[answers.size() / 2];
  }

  void EstimateMany(const std::vector<core::Itemset>& ts,
                    std::vector<double>* answers) const override {
    std::vector<std::vector<double>> per_copy(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      copies_[c]->EstimateMany(ts, &per_copy[c]);
    }
    answers->resize(ts.size());
    std::vector<double> column(copies_.size());
    for (std::size_t q = 0; q < ts.size(); ++q) {
      for (std::size_t c = 0; c < copies_.size(); ++c) {
        column[c] = per_copy[c][q];
      }
      std::nth_element(column.begin(), column.begin() + column.size() / 2,
                       column.end());
      (*answers)[q] = column[column.size() / 2];
    }
  }

 private:
  std::vector<std::unique_ptr<core::FrequencyEstimator>> copies_;
};

}  // namespace

MedianBoostSketch::MedianBoostSketch(
    std::shared_ptr<core::SketchAlgorithm> inner, double copies_scale)
    : inner_(std::move(inner)), copies_scale_(copies_scale) {
  IFSKETCH_CHECK(inner_ != nullptr);
  IFSKETCH_CHECK_GT(copies_scale_, 0.0);
}

std::string MedianBoostSketch::name() const {
  return "MEDIAN-BOOST(" + inner_->name() + ")";
}

core::SketchParams MedianBoostSketch::InnerParams(
    const core::SketchParams& outer) {
  core::SketchParams inner = outer;
  inner.scope = core::Scope::kForEach;
  inner.answer = core::Answer::kEstimator;
  inner.delta = 0.25;
  return inner;
}

std::size_t MedianBoostSketch::CopyCount(const core::SketchParams& params,
                                         std::size_t d) const {
  const double ln_term =
      util::LogBinomial(d, params.k) - std::log(params.delta);
  std::size_t m = static_cast<std::size_t>(
      std::ceil(copies_scale_ * 10.0 * std::max(ln_term, 1.0)));
  if (m % 2 == 0) ++m;
  return m;
}

util::BitVector MedianBoostSketch::Build(const core::Database& db,
                                         const core::SketchParams& params,
                                         util::Rng& rng) const {
  const core::SketchParams ip = InnerParams(params);
  const std::size_t m = CopyCount(params, db.num_columns());
  const std::size_t inner_bits =
      inner_->PredictedSizeBits(db.num_rows(), db.num_columns(), ip);
  util::BitVector out(m * inner_bits);
  for (std::size_t c = 0; c < m; ++c) {
    const util::BitVector copy = inner_->Build(db, ip, rng);
    IFSKETCH_CHECK_EQ(copy.size(), inner_bits);
    for (std::size_t b = 0; b < inner_bits; ++b) {
      out.Set(c * inner_bits + b, copy.Get(b));
    }
  }
  return out;
}

std::unique_ptr<core::FrequencyEstimator> MedianBoostSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& params,
    std::size_t d, std::size_t n) const {
  const core::SketchParams ip = InnerParams(params);
  const std::size_t m = CopyCount(params, d);
  IFSKETCH_CHECK_EQ(summary.size() % m, 0u);
  const std::size_t inner_bits = summary.size() / m;
  std::vector<std::unique_ptr<core::FrequencyEstimator>> copies;
  copies.reserve(m);
  for (std::size_t c = 0; c < m; ++c) {
    copies.push_back(inner_->LoadEstimator(
        summary.Slice(c * inner_bits, inner_bits), ip, d, n));
  }
  return std::make_unique<MedianEstimator>(std::move(copies));
}

std::size_t MedianBoostSketch::PredictedSizeBits(
    std::size_t n, std::size_t d, const core::SketchParams& params) const {
  return CopyCount(params, d) *
         inner_->PredictedSizeBits(n, d, InnerParams(params));
}

bool MedianBoostSketch::SupportsQuerySize(
    std::size_t size, const core::SketchParams& params) const {
  return inner_->SupportsQuerySize(size, InnerParams(params));
}

}  // namespace ifsketch::sketch
