// The Theorem 17 transform: For-Each estimator -> For-All estimator.
//
// S' stores m = ceil(10 * ln(C(d,k)/delta)) independent copies of the
// inner For-Each summary; Q' answers with the median of the m per-copy
// answers. Chernoff + union bound give the For-All guarantee. The paper
// uses this reduction to transfer the Theorem 16 lower bound to the
// For-Each case; we implement it as a reusable combinator.
#ifndef IFSKETCH_SKETCH_MEDIAN_BOOST_H_
#define IFSKETCH_SKETCH_MEDIAN_BOOST_H_

#include <memory>

#include "core/sketch.h"

namespace ifsketch::sketch {

/// Wraps a For-Each estimator algorithm into a For-All one via
/// median-of-copies.
class MedianBoostSketch : public core::SketchAlgorithm {
 public:
  /// `inner` is run with Scope::kForEach regardless of the outer scope;
  /// `copies_scale` multiplies the copy count (1.0 = the paper's 10 ln(..)).
  explicit MedianBoostSketch(std::shared_ptr<core::SketchAlgorithm> inner,
                             double copies_scale = 1.0);

  std::string name() const override;

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  /// Delegates to the inner algorithm (a copy answers what it answers).
  bool SupportsQuerySize(std::size_t size,
                         const core::SketchParams& params) const override;

  /// Number of inner copies for the given parameters:
  /// ceil(copies_scale * 10 * ln(C(d,k)/delta)), odd (so medians are
  /// well-defined single answers) and at least 1.
  std::size_t CopyCount(const core::SketchParams& params, std::size_t d) const;

 private:
  /// The inner algorithm's parameter set: same (k, eps) but For-Each scope
  /// and constant failure probability 1/4 (< 1/2 as Theorem 17 requires).
  static core::SketchParams InnerParams(const core::SketchParams& outer);

  std::shared_ptr<core::SketchAlgorithm> inner_;
  double copies_scale_;
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_MEDIAN_BOOST_H_
