#include "sketch/stratified_sample.h"

#include <cmath>
#include <vector>

#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {
namespace {

constexpr int kWeightBits = 32;  // fixed-point stratum weights

struct Stratum {
  double weight = 0.0;                     // n_h / n
  core::Database sample;                   // sampled rows
};

class StratifiedEstimator : public core::FrequencyEstimator {
 public:
  explicit StratifiedEstimator(std::vector<Stratum> strata)
      : strata_(std::move(strata)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    double acc = 0.0;
    for (const auto& s : strata_) {
      if (s.sample.num_rows() > 0) {
        acc += s.weight * s.sample.Frequency(t);
      }
    }
    return acc < 0.0 ? 0.0 : (acc > 1.0 ? 1.0 : acc);
  }

 private:
  std::vector<Stratum> strata_;
};

}  // namespace

StratifiedSampler::StratifiedSampler(std::size_t strata) : strata_(strata) {
  IFSKETCH_CHECK_GE(strata, 1u);
}

util::BitVector StratifiedSampler::Build(const core::Database& db,
                                         std::size_t total_samples,
                                         util::Rng& rng) const {
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  IFSKETCH_CHECK_GT(total_samples, 0u);
  const std::size_t d = db.num_columns();
  // Partition row indices by popcount bucket.
  std::vector<std::vector<std::size_t>> members(strata_);
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    const std::size_t pc = db.Row(i).Count();
    const std::size_t bucket =
        std::min(strata_ - 1, pc * strata_ / (d + 1));
    members[bucket].push_back(i);
  }
  util::BitWriter w;
  w.WriteUint(strata_, 16);
  for (std::size_t h = 0; h < strata_; ++h) {
    const double weight = static_cast<double>(members[h].size()) /
                          static_cast<double>(db.num_rows());
    std::size_t s_h = 0;
    if (!members[h].empty()) {
      s_h = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(
                 weight * static_cast<double>(total_samples))));
    }
    w.WriteUint(s_h, 32);
    w.WriteQuantized(weight, kWeightBits);
    for (std::size_t j = 0; j < s_h; ++j) {
      const std::size_t pick =
          members[h][rng.UniformInt(members[h].size())];
      w.WriteBits(db.Row(pick));
    }
  }
  return w.Finish();
}

std::unique_ptr<core::FrequencyEstimator> StratifiedSampler::Load(
    const util::BitVector& summary, std::size_t d) const {
  util::BitReader r(summary);
  const std::size_t strata = r.ReadUint(16);
  std::vector<Stratum> loaded;
  loaded.reserve(strata);
  for (std::size_t h = 0; h < strata; ++h) {
    Stratum s;
    const std::size_t s_h = r.ReadUint(32);
    s.weight = r.ReadQuantized(kWeightBits);
    std::vector<util::BitVector> rows;
    rows.reserve(s_h);
    for (std::size_t j = 0; j < s_h; ++j) rows.push_back(r.ReadBits(d));
    s.sample = core::Database::FromRows(std::move(rows));
    loaded.push_back(std::move(s));
  }
  return std::make_unique<StratifiedEstimator>(std::move(loaded));
}

}  // namespace ifsketch::sketch
