// Internal: the IFSK header-field and arena (v2) section-table
// acceptance rules, shared by the two parsers.
//
// The stream parser (sketch_file.cc) and the in-place image validator
// (sketch_view.cc) read bytes differently but MUST accept exactly the
// same inputs -- the bidirectional fuzz differential in sketch_view_test
// enforces it at test time, and keeping every decision (field ranges,
// enum bytes, kind set, ordering, flags, alignment, word caps, tiling,
// shape arithmetic, overflow guards) in this one header makes drift
// impossible by construction. The functions are templated on the cursor
// type: both cursors expose the same Read/Get/Fail(offset, message)/
// offset() surface, and Fail returns false so `return cursor.Fail(...)`
// propagates. Each parser still owns its mechanical half: producing
// bytes, and checking section padding/tail bits the way its access
// pattern allows.
#ifndef IFSKETCH_SKETCH_ARENA_LAYOUT_H_
#define IFSKETCH_SKETCH_ARENA_LAYOUT_H_

#include <cstdint>
#include <cstring>
#include <limits>

#include "sketch/sketch_file.h"

namespace ifsketch::sketch::arena_internal {

inline constexpr char kMagic[4] = {'I', 'F', 'S', 'K'};

/// Byte offset of the u16 version field (right after the magic), for
/// version-policy errors in the callers.
inline constexpr std::uint64_t kVersionOffset = 4;

// Word counts are later multiplied by 8 and added to offsets; this cap
// (far above any real sketch) keeps all of that arithmetic overflow-free.
inline constexpr std::uint64_t kMaxSectionWords = std::uint64_t{1} << 58;

inline std::uint64_t RoundUpToAlign(std::uint64_t offset) {
  return (offset + (arena::kSectionAlign - 1)) /
         arena::kSectionAlign * arena::kSectionAlign;
}

/// Reads and checks the magic, then reads the version. The caller owns
/// the version-value policy (the stream parser accepts v1 and v2, the
/// image validator only v2) and reports its own error at kVersionOffset.
template <typename Cursor>
bool ReadMagicAndVersion(Cursor& cursor, std::uint16_t* version) {
  char magic[4];
  if (!cursor.Read(magic, 4, "magic")) return false;
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return cursor.Fail(0, "bad magic (not an IFSK sketch file)");
  }
  return cursor.Get(*version, "version");
}

/// Reads and validates every header field after the version (algorithm
/// name through summary bit count), filling `file` (except
/// file.version) and `bits`. Shared so field ranges and error offsets
/// can never differ between the parsers.
template <typename Cursor>
bool ReadHeaderAfterVersion(Cursor& cursor, SketchFile* file,
                            std::uint64_t* bits) {
  std::uint16_t name_len = 0;
  if (!cursor.Get(name_len, "algorithm name length")) return false;
  file->algorithm.resize(name_len);
  if (name_len > 0 &&
      !cursor.Read(file->algorithm.data(), name_len, "algorithm name")) {
    return false;
  }

  std::uint32_t k = 0;
  std::uint8_t scope = 0, answer = 0;
  std::uint64_t n = 0, d = 0;
  const std::uint64_t params_at = cursor.offset();
  if (!cursor.Get(k, "parameter k") ||
      !cursor.Get(file->params.eps, "eps") ||
      !cursor.Get(file->params.delta, "delta")) {
    return false;
  }
  const std::uint64_t scope_at = cursor.offset();
  if (!cursor.Get(scope, "scope byte")) return false;
  const std::uint64_t answer_at = cursor.offset();
  if (!cursor.Get(answer, "answer byte") || !cursor.Get(n, "row count") ||
      !cursor.Get(d, "column count")) {
    return false;
  }
  const std::uint64_t bits_at = cursor.offset();
  if (!cursor.Get(*bits, "summary bit count")) return false;

  // Enum bytes must name a real enumerator; a corrupt byte would
  // otherwise smuggle an invalid Scope/Answer into SketchParams and
  // misconfigure every downstream loader.
  if (scope > 1) return cursor.Fail(scope_at, "invalid scope byte");
  if (answer > 1) return cursor.Fail(answer_at, "invalid answer byte");
  // Keep every derived size computation wrap-free: the parsers form
  // (bits+63)/64 words (v2) and (bits+7)/8 bytes (v1), so anything
  // within 63 of 2^64 would silently wrap to a tiny count and let a
  // crafted file smuggle a zero-word summary past the shape checks.
  if (*bits >= std::numeric_limits<std::uint64_t>::max() - 63) {
    return cursor.Fail(bits_at, "summary bit count out of range");
  }
  // Parameter sanity: k is a cardinality, eps/delta are probabilities
  // the query procedures divide by and take logs of.
  file->params.k = k;
  if (!core::ValidSketchParams(file->params)) {
    return cursor.Fail(params_at, "invalid sketch parameters (k/eps/delta)");
  }
  file->params.scope = scope == 0 ? core::Scope::kForAll
                                  : core::Scope::kForEach;
  file->params.answer =
      answer == 0 ? core::Answer::kIndicator : core::Answer::kEstimator;
  file->n = static_cast<std::size_t>(n);
  file->d = static_cast<std::size_t>(d);
  return true;
}

/// One section-table entry as read from the file (flags carried so the
/// shared validator can reject nonzero reserved bits).
struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t flags = 0;
  std::uint64_t offset = 0;
  std::uint64_t words = 0;
};

/// Reads the section count and raw entry fields (`entries` must hold
/// arena::kMaxSections). The count range is checked here -- before any
/// entry read -- so a corrupt count can never drive a huge read loop;
/// ValidateSectionTable re-checks it with everything else.
template <typename Cursor>
bool ReadSectionEntries(Cursor& cursor, std::uint32_t* count,
                        std::uint64_t* count_at, SectionEntry* entries) {
  *count_at = cursor.offset();
  if (!cursor.Get(*count, "section count")) return false;
  if (*count == 0 || *count > arena::kMaxSections) {
    return cursor.Fail(*count_at, "section count out of range");
  }
  for (std::uint32_t s = 0; s < *count; ++s) {
    SectionEntry& entry = entries[s];
    if (!cursor.Get(entry.kind, "section kind") ||
        !cursor.Get(entry.flags, "section flags") ||
        !cursor.Get(entry.offset, "section offset") ||
        !cursor.Get(entry.words, "section word count")) {
      return false;
    }
  }
  return true;
}

/// The validated shape of a v2 body.
struct ArenaLayout {
  SectionEntry summary;
  bool has_columns = false;
  SectionEntry columns;
  std::uint64_t rows = 0;        // columns section: bits / d
  std::uint64_t col_words = 0;   // ceil(rows / 64)
  std::uint64_t stride = 0;      // arena::ColumnStrideWords(rows)
  std::uint64_t end_offset = 0;  // first byte past the last section
};

/// Applies every structural rule to an already-read section table.
/// `count_at` is the byte offset of the section-count field and
/// `table_end` the offset just past the table (so per-entry error
/// offsets can be reconstructed); `bits`/`d` come from the header. On
/// failure returns false with the offending offset and a static message
/// in *fail_at / *fail_message.
inline bool ValidateSectionTable(const SectionEntry* entries,
                                 std::uint32_t count, std::uint64_t count_at,
                                 std::uint64_t table_end, std::uint64_t bits,
                                 std::uint64_t d, ArenaLayout* out,
                                 std::uint64_t* fail_at,
                                 const char** fail_message) {
  const auto fail = [&](std::uint64_t at, const char* message) {
    *fail_at = at;
    *fail_message = message;
    return false;
  };
  if (count == 0 || count > arena::kMaxSections) {
    return fail(count_at, "section count out of range");
  }
  std::uint64_t prev_kind = 0;
  for (std::uint32_t s = 0; s < count; ++s) {
    const std::uint64_t entry_at =
        count_at + 4 + s * arena::kSectionEntryBytes;
    const SectionEntry& entry = entries[s];
    if (entry.kind != arena::kSummaryWords &&
        entry.kind != arena::kColumnWords) {
      return fail(entry_at, "unknown section kind");
    }
    if (entry.kind <= prev_kind) {
      return fail(entry_at, "section kinds not strictly ascending");
    }
    prev_kind = entry.kind;
    if (entry.flags != 0) {
      return fail(entry_at + 4, "reserved section flags not zero");
    }
    if (entry.offset % arena::kSectionAlign != 0) {
      return fail(entry_at + 8, "section offset not 64-byte aligned");
    }
    if (entry.words > kMaxSectionWords) {
      return fail(entry_at + 16, "section word count out of range");
    }
  }
  if (entries[0].kind != arena::kSummaryWords) {
    return fail(count_at, "missing summary-words section");
  }

  // Sections tile the tail of the file exactly: each starts at the first
  // aligned boundary after its predecessor (the first one after the
  // table), with only padding (checked zero by the parsers) between.
  std::uint64_t expected_offset = RoundUpToAlign(table_end);
  for (std::uint32_t s = 0; s < count; ++s) {
    if (entries[s].offset != expected_offset) {
      return fail(count_at, "section offsets do not tile the file");
    }
    expected_offset =
        RoundUpToAlign(entries[s].offset + entries[s].words * 8);
  }

  out->summary = entries[0];
  if (out->summary.words != (bits + 63) / 64) {
    return fail(count_at, "summary word count does not match bit count");
  }
  out->has_columns = count > 1;
  out->end_offset = entries[count - 1].offset + entries[count - 1].words * 8;
  if (out->has_columns) {
    out->columns = entries[1];
    if (d == 0 || bits == 0 || bits % d != 0) {
      return fail(count_at, "column section requires a row-major payload shape");
    }
    out->rows = bits / d;
    out->col_words = (out->rows + 63) / 64;
    out->stride =
        arena::ColumnStrideWords(static_cast<std::size_t>(out->rows));
    if (out->stride != 0 && d > kMaxSectionWords / out->stride) {
      return fail(count_at, "column section size overflows");
    }
    if (out->columns.words != d * out->stride) {
      return fail(count_at, "column word count does not match shape");
    }
  }
  return true;
}

/// Validates the 16 raw bytes of an integrity trailer (arena::
/// kTrailerBytes read starting at the byte just past the last section)
/// against `actual_crc`, the CRC32C the parser computed over every byte
/// before the trailer. `trailer_at` is the trailer's byte offset, used
/// to locate failures. Shared so both parsers accept exactly the same
/// checksummed files (the trailer-less acceptance -- stream at EOF,
/// image size == end_offset -- stays with each parser).
inline bool ValidateTrailer(const unsigned char* trailer,
                            std::uint64_t trailer_at,
                            std::uint32_t actual_crc, std::uint64_t* fail_at,
                            const char** fail_message) {
  const auto fail = [&](std::uint64_t at, const char* message) {
    *fail_at = at;
    *fail_message = message;
    return false;
  };
  if (std::memcmp(trailer, arena::kTrailerMagic, 4) != 0) {
    return fail(trailer_at, "bad integrity trailer magic");
  }
  std::uint32_t kind = 0;
  std::memcpy(&kind, trailer + 4, 4);
  if (kind != arena::kChecksumCrc32c) {
    return fail(trailer_at + 4, "unsupported checksum kind");
  }
  std::uint64_t value = 0;
  std::memcpy(&value, trailer + 8, 8);
  if (value != actual_crc) {
    return fail(trailer_at + 8, "file checksum mismatch");
  }
  return true;
}

}  // namespace ifsketch::sketch::arena_internal

#endif  // IFSKETCH_SKETCH_ARENA_LAYOUT_H_
