// The Theorem 12 naive envelope: min over the three trivial algorithms.
//
// For any (n, d, k, eps, delta) the smallest of RELEASE-DB,
// RELEASE-ANSWERS and SUBSAMPLE is the paper's naive upper bound; the
// lower bounds show this envelope is (essentially) optimal. NaiveEnvelope
// reports all three predicted sizes and which algorithm wins.
#ifndef IFSKETCH_SKETCH_ENVELOPE_H_
#define IFSKETCH_SKETCH_ENVELOPE_H_

#include <memory>
#include <string>

#include "core/sketch.h"

namespace ifsketch::sketch {

/// Predicted sizes of the three naive algorithms and the winner.
struct EnvelopeReport {
  std::size_t release_db_bits = 0;
  std::size_t release_answers_bits = 0;
  std::size_t subsample_bits = 0;
  std::string winner;          ///< Name of the smallest algorithm.
  std::size_t winner_bits = 0; ///< min of the three.
};

/// Evaluates the Theorem 12 envelope for a database shape.
EnvelopeReport NaiveEnvelope(std::size_t n, std::size_t d,
                             const core::SketchParams& params);

/// Instantiates the winning algorithm for the shape.
std::unique_ptr<core::SketchAlgorithm> BestNaiveAlgorithm(
    std::size_t n, std::size_t d, const core::SketchParams& params);

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_ENVELOPE_H_
