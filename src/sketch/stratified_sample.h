// Stratified row sampling (the §5 / Lang-Liberty-Shmakov direction).
//
// Rows are partitioned into strata by popcount bucket (a proxy for "how
// much itemset mass a row carries"); each stratum is sampled uniformly
// with proportional allocation and the estimator recombines per-stratum
// frequencies with the true stratum weights. On databases whose rows are
// heterogeneous this reduces variance relative to uniform sampling at
// equal size; on the paper's hard distributions it cannot help -- which
// is the point of the lower bounds. Standalone (not a SketchAlgorithm):
// its summary layout depends on the data's stratum occupancy.
#ifndef IFSKETCH_SKETCH_STRATIFIED_SAMPLE_H_
#define IFSKETCH_SKETCH_STRATIFIED_SAMPLE_H_

#include <memory>

#include "core/sketch.h"

namespace ifsketch::sketch {

/// Builder + loader for stratified-sample summaries.
class StratifiedSampler {
 public:
  /// `strata`: number of popcount buckets (rows with popcount in
  /// [h*d/strata, (h+1)*d/strata) share bucket h).
  explicit StratifiedSampler(std::size_t strata = 4);

  /// Builds a summary of ~`total_samples` rows, allocated across
  /// non-empty strata proportionally (each non-empty stratum gets >= 1).
  util::BitVector Build(const core::Database& db,
                        std::size_t total_samples, util::Rng& rng) const;

  /// Loads the estimator view: f = sum_h weight_h * f_h(sample_h).
  std::unique_ptr<core::FrequencyEstimator> Load(
      const util::BitVector& summary, std::size_t d) const;

 private:
  std::size_t strata_;
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_STRATIFIED_SAMPLE_H_
