// RELEASE-ANSWERS (Definition 7): precompute and store every query answer.
//
// For the indicator semantics the summary is one bit per k-itemset
// (C(d,k) bits); for the estimator semantics it is a ceil(log2(1/eps))+1
// bit fixed-point frequency per itemset — the paper's extra log(1/eps)
// factor. Itemsets are indexed by colex rank so Q is a direct lookup.
// Only usable when C(d,k) is small; one corner of the Theorem 12 envelope.
#ifndef IFSKETCH_SKETCH_RELEASE_ANSWERS_H_
#define IFSKETCH_SKETCH_RELEASE_ANSWERS_H_

#include "core/sketch.h"

namespace ifsketch::sketch {

/// The precomputed-answers sketch.
class ReleaseAnswersSketch : public core::SketchAlgorithm {
 public:
  std::string name() const override { return "RELEASE-ANSWERS"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::unique_ptr<core::FrequencyIndicator> LoadIndicator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  /// Only the C(d,k) size-k answers exist; any other query size would
  /// alias into the wrong table slot.
  bool SupportsQuerySize(std::size_t size,
                         const core::SketchParams& params) const override {
    return size == params.k;
  }

  /// Bits of precision per stored frequency: ceil(log2(1/eps)) + 1, so the
  /// quantization error is at most eps/2 < eps.
  static int FrequencyBits(double eps);
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_RELEASE_ANSWERS_H_
