// RELEASE-DB (Definition 6): the identity sketch.
//
// S is the identity (the database verbatim, n*d bits plus the row count);
// Q is an exact database query. Space |S| = O(nd); answers are exact under
// all four semantics. One corner of the Theorem 12 min-envelope.
#ifndef IFSKETCH_SKETCH_RELEASE_DB_H_
#define IFSKETCH_SKETCH_RELEASE_DB_H_

#include "core/sketch.h"

namespace ifsketch::sketch {

/// The verbatim-database sketch.
class ReleaseDbSketch : public core::SketchAlgorithm {
 public:
  std::string name() const override { return "RELEASE-DB"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  /// Recovers the database itself (unique to this sketch; used by tests).
  static core::Database Decode(const util::BitVector& summary, std::size_t d,
                               std::size_t n);
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_RELEASE_DB_H_
