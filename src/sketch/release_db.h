// RELEASE-DB (Definition 6): the identity sketch.
//
// S is the identity (the database verbatim, n*d bits plus the row count);
// Q is an exact database query. Space |S| = O(nd); answers are exact under
// all four semantics. One corner of the Theorem 12 min-envelope.
#ifndef IFSKETCH_SKETCH_RELEASE_DB_H_
#define IFSKETCH_SKETCH_RELEASE_DB_H_

#include "core/sketch.h"

namespace ifsketch::sketch {

/// The verbatim-database sketch.
class ReleaseDbSketch : public core::SketchAlgorithm {
 public:
  std::string name() const override { return "RELEASE-DB"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  /// The summary is the database verbatim: n rows of d bits, so the
  /// arena writer frames a column section and the mapped load path
  /// queries it with no decode (answers remain exact).
  bool HasRowMajorPayload(const core::SketchParams& params) const override {
    (void)params;
    return true;
  }

  std::unique_ptr<core::FrequencyEstimator> LoadEstimatorFromColumns(
      core::ColumnStore columns, const util::BitVector& summary,
      const core::SketchParams& params, std::size_t d,
      std::size_t n) const override;

  /// Mirrors the base LoadIndicator default (threshold at 0.75*eps) over
  /// the zero-copy estimator, so mapped indicator queries skip the
  /// transpose too and stay bit-identical to the copying path.
  std::unique_ptr<core::FrequencyIndicator> LoadIndicatorFromColumns(
      core::ColumnStore columns, const util::BitVector& summary,
      const core::SketchParams& params, std::size_t d,
      std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  /// Recovers the database itself (unique to this sketch; used by tests).
  static core::Database Decode(const util::BitVector& summary, std::size_t d,
                               std::size_t n);
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_RELEASE_DB_H_
