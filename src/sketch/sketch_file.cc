#include "sketch/sketch_file.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/column_store.h"
#include "sketch/arena_layout.h"
#include "sketch/builtin_algorithms.h"
#include "util/crc32c.h"
#include "util/durable.h"

namespace ifsketch::sketch {
namespace {

using arena_internal::RoundUpToAlign;

template <typename T>
void PutRaw(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void PutZeros(std::ostream& out, std::uint64_t count) {
  static constexpr char kZeros[arena::kSectionAlign] = {};
  while (count > 0) {
    const std::uint64_t chunk =
        count < sizeof(kZeros) ? count : sizeof(kZeros);
    out.write(kZeros, static_cast<std::streamsize>(chunk));
    count -= chunk;
  }
}

void PutWords(std::ostream& out, const std::uint64_t* words,
              std::uint64_t count) {
  if (count > 0) {
    out.write(reinterpret_cast<const char*>(words),
              static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  }
}

// Sequential reader that knows how far into the stream it is, so every
// validation failure can name the byte offset of the offending field.
class StreamCursor {
 public:
  StreamCursor(std::istream& in, SketchError* error)
      : in_(in), error_(error) {}

  std::uint64_t offset() const { return offset_; }

  /// CRC32C over every byte consumed so far. Snapshotted before the
  /// trailer itself is read, so it covers exactly the trailer's domain.
  std::uint32_t crc() const { return crc_; }

  /// Records a failure at `at` (a field-start offset) and returns false.
  bool Fail(std::uint64_t at, std::string message) {
    if (error_ != nullptr) {
      error_->message = std::move(message);
      error_->offset = at;
    }
    return false;
  }

  /// Reads `len` raw bytes; on a short read fails with "`what` truncated"
  /// at the field's start offset.
  bool Read(void* dst, std::uint64_t len, const char* what) {
    const std::uint64_t at = offset_;
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
    if (static_cast<std::uint64_t>(in_.gcount()) != len) {
      return Fail(at, std::string(what) + ": file truncated");
    }
    crc_ = util::Crc32cExtend(crc_, dst, static_cast<std::size_t>(len));
    offset_ += len;
    return true;
  }

  template <typename T>
  bool Get(T& value, const char* what) {
    return Read(&value, sizeof(T), what);
  }

  /// True when the stream has no bytes left to consume.
  bool AtEnd() {
    return in_.peek() == std::char_traits<char>::eof();
  }

  /// Consumes `len` padding bytes, requiring them to be zero.
  bool SkipZeros(std::uint64_t len, const char* what) {
    char buffer[arena::kSectionAlign];
    while (len > 0) {
      const std::uint64_t at = offset_;
      const std::uint64_t chunk =
          len < sizeof(buffer) ? len : sizeof(buffer);
      if (!Read(buffer, chunk, what)) return false;
      for (std::uint64_t i = 0; i < chunk; ++i) {
        if (buffer[i] != 0) {
          return Fail(at + i, std::string(what) + ": nonzero padding byte");
        }
      }
      len -= chunk;
    }
    return true;
  }

 private:
  std::istream& in_;
  SketchError* error_;
  std::uint64_t offset_ = 0;
  std::uint32_t crc_ = 0;
};

// The v1 payload: bits packed LSB-first into bytes, read in bounded
// chunks so a corrupt bit count fails once the stream runs dry instead
// of attempting one giant allocation.
bool ReadLegacyPayload(StreamCursor& cursor, std::uint64_t bits,
                       util::BitVector* summary) {
  const std::uint64_t num_bytes = (bits + 7) / 8;
  std::vector<char> bytes;
  bytes.reserve(static_cast<std::size_t>(
      num_bytes < (std::uint64_t{1} << 20) ? num_bytes : (1 << 20)));
  constexpr std::uint64_t kChunk = 64 * 1024;
  char chunk[kChunk];
  for (std::uint64_t got = 0; got < num_bytes;) {
    const std::uint64_t want =
        num_bytes - got < kChunk ? num_bytes - got : kChunk;
    if (!cursor.Read(chunk, want, "summary payload")) return false;
    bytes.insert(bytes.end(), chunk, chunk + want);
    got += want;
  }
  util::BitVector out(static_cast<std::size_t>(bits));
  for (std::size_t i = 0; i < bits; ++i) {
    if ((bytes[i / 8] >> (i % 8)) & 1) out.Set(i, true);
  }
  *summary = std::move(out);
  return true;
}

// Reads and validates the v2 section table plus both section bodies.
// The copying path only keeps the summary; the column section, when
// present, is still consumed and structurally validated (tail bits and
// padding words zero) so both load paths accept exactly the same files.
bool ReadArenaBody(StreamCursor& cursor, std::uint64_t bits, std::size_t d,
                   util::BitVector* summary) {
  std::uint32_t section_count = 0;
  std::uint64_t count_at = 0;
  arena_internal::SectionEntry sections[arena::kMaxSections];
  if (!arena_internal::ReadSectionEntries(cursor, &section_count, &count_at,
                                          sections)) {
    return false;
  }
  // All structural decisions live in the shared validator, so the stream
  // parser and the image validator accept exactly the same tables.
  arena_internal::ArenaLayout layout;
  std::uint64_t fail_at = 0;
  const char* fail_message = nullptr;
  if (!arena_internal::ValidateSectionTable(sections, section_count,
                                            count_at, cursor.offset(), bits,
                                            d, &layout, &fail_at,
                                            &fail_message)) {
    return cursor.Fail(fail_at, fail_message);
  }

  // Summary section: exactly the BitVector word image of `bits` bits.
  const arena_internal::SectionEntry& summary_section = layout.summary;
  if (!cursor.SkipZeros(summary_section.offset - cursor.offset(),
                        "pre-section padding")) {
    return false;
  }
  std::vector<std::uint64_t> words;
  words.reserve(static_cast<std::size_t>(
      summary_section.words < (std::uint64_t{1} << 17)
          ? summary_section.words
          : (std::uint64_t{1} << 17)));
  constexpr std::uint64_t kChunkWords = 8 * 1024;
  std::uint64_t chunk[kChunkWords];
  for (std::uint64_t got = 0; got < summary_section.words;) {
    const std::uint64_t want = summary_section.words - got < kChunkWords
                                   ? summary_section.words - got
                                   : kChunkWords;
    if (!cursor.Read(chunk, want * 8, "summary words")) return false;
    words.insert(words.end(), chunk, chunk + want);
    got += want;
  }
  if ((bits & 63) != 0 && !words.empty() &&
      (words.back() >> (bits & 63)) != 0) {
    return cursor.Fail(summary_section.offset + (summary_section.words - 1) * 8,
                       "summary trailing bits not zero");
  }
  *summary = util::BitVector::AdoptWords(std::move(words),
                                         static_cast<std::size_t>(bits));

  // Optional column section: d columns of bits/d rows at an aligned
  // stride. Consumed one column at a time (memory stays bounded by one
  // column even for adversarial word counts).
  if (layout.has_columns) {
    const std::uint64_t rows = layout.rows;
    const std::uint64_t col_words = layout.col_words;
    const std::uint64_t stride = layout.stride;
    if (!cursor.SkipZeros(layout.columns.offset - cursor.offset(),
                          "pre-section padding")) {
      return false;
    }
    std::vector<std::uint64_t> column(static_cast<std::size_t>(stride));
    for (std::uint64_t j = 0; j < d; ++j) {
      const std::uint64_t column_at = cursor.offset();
      if (!cursor.Read(column.data(), stride * 8, "column words")) {
        return false;
      }
      if ((rows & 63) != 0 && (column[static_cast<std::size_t>(col_words) - 1]
                               >> (rows & 63)) != 0) {
        return cursor.Fail(column_at + (col_words - 1) * 8,
                           "column trailing bits not zero");
      }
      for (std::uint64_t w = col_words; w < stride; ++w) {
        if (column[static_cast<std::size_t>(w)] != 0) {
          return cursor.Fail(column_at + w * 8,
                             "nonzero column padding word");
        }
      }
    }
  }
  // Mirror the image validator's size rule, so the two parsers accept
  // exactly the same inputs (the bidirectional fuzz assertion in
  // sketch_view_test holds them to it): a v2 byte string ends exactly
  // where its section table says, OR exactly arena::kTrailerBytes later
  // with a valid integrity trailer over everything before it. v1 streams
  // keep their legacy trailing-byte tolerance.
  if (cursor.AtEnd()) return true;
  const std::uint64_t trailer_at = cursor.offset();
  const std::uint32_t body_crc = cursor.crc();  // before the trailer reads
  unsigned char trailer[arena::kTrailerBytes];
  if (!cursor.Read(trailer, arena::kTrailerBytes, "integrity trailer")) {
    return false;
  }
  if (!arena_internal::ValidateTrailer(trailer, trailer_at, body_crc,
                                       &fail_at, &fail_message)) {
    return cursor.Fail(fail_at, fail_message);
  }
  if (!cursor.AtEnd()) {
    return cursor.Fail(cursor.offset(),
                       "trailing bytes after integrity trailer");
  }
  return true;
}

// The trailer-less serialization shared by both WriteSketch modes.
bool WriteSketchBody(std::ostream& out, const SketchFile& file,
                     std::uint16_t version) {
  // Refuse to emit a file ReadSketch would reject: nothing serializable
  // may be unloadable. The name length must fit its u16 header field.
  if (!core::ValidSketchParams(file.params)) return false;
  if (file.algorithm.size() > 0xffff) return false;
  if (version != arena::kVersionLegacy && version != arena::kVersionArena) {
    return false;
  }
  out.write(arena_internal::kMagic, 4);
  PutRaw<std::uint16_t>(out, version);
  PutRaw<std::uint16_t>(out,
                        static_cast<std::uint16_t>(file.algorithm.size()));
  out.write(file.algorithm.data(),
            static_cast<std::streamsize>(file.algorithm.size()));
  PutRaw<std::uint32_t>(out, static_cast<std::uint32_t>(file.params.k));
  PutRaw<double>(out, file.params.eps);
  PutRaw<double>(out, file.params.delta);
  PutRaw<std::uint8_t>(out, file.params.scope == core::Scope::kForAll ? 0
                                                                      : 1);
  PutRaw<std::uint8_t>(
      out, file.params.answer == core::Answer::kIndicator ? 0 : 1);
  PutRaw<std::uint64_t>(out, file.n);
  PutRaw<std::uint64_t>(out, file.d);
  const std::uint64_t bits = file.summary.size();
  PutRaw<std::uint64_t>(out, bits);

  if (version == arena::kVersionLegacy) {
    // Pack bits LSB-first into bytes.
    std::vector<char> bytes((file.summary.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < file.summary.size(); ++i) {
      if (file.summary.Get(i)) {
        bytes[i / 8] |= static_cast<char>(1 << (i % 8));
      }
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  } else {
    // Arena framing: aligned word sections behind an offset table. A
    // column section is framed only for algorithms whose whole payload
    // is one row-major sample -- that is what the mapped load path can
    // hand to ColumnStore::FromColumnWords verbatim.
    const std::uint64_t summary_words = (bits + 63) / 64;
    const auto algo = ResolveAlgorithm(file);
    const bool with_columns = algo != nullptr &&
                              algo->HasRowMajorPayload(file.params) &&
                              file.d > 0 && bits > 0 && bits % file.d == 0;
    const std::uint64_t rows = with_columns ? bits / file.d : 0;
    const std::uint64_t stride =
        with_columns
            ? arena::ColumnStrideWords(static_cast<std::size_t>(rows))
            : 0;
    const std::uint32_t section_count = with_columns ? 2 : 1;

    const std::uint64_t header_end =
        4 + 2 + 2 + file.algorithm.size() + 4 + 8 + 8 + 1 + 1 + 8 + 8 + 8 +
        4 + section_count * arena::kSectionEntryBytes;
    const std::uint64_t summary_offset = RoundUpToAlign(header_end);
    const std::uint64_t columns_offset =
        RoundUpToAlign(summary_offset + summary_words * 8);

    PutRaw<std::uint32_t>(out, section_count);
    PutRaw<std::uint32_t>(out, arena::kSummaryWords);
    PutRaw<std::uint32_t>(out, 0);  // flags
    PutRaw<std::uint64_t>(out, summary_offset);
    PutRaw<std::uint64_t>(out, summary_words);
    if (with_columns) {
      PutRaw<std::uint32_t>(out, arena::kColumnWords);
      PutRaw<std::uint32_t>(out, 0);  // flags
      PutRaw<std::uint64_t>(out, columns_offset);
      PutRaw<std::uint64_t>(out, file.d * stride);
    }

    PutZeros(out, summary_offset - header_end);
    PutWords(out, file.summary.data(), summary_words);
    if (with_columns) {
      PutZeros(out, columns_offset - (summary_offset + summary_words * 8));
      const core::ColumnStore columns =
          core::ColumnStore::FromRowMajorBits(file.summary, file.d);
      for (std::size_t j = 0; j < file.d; ++j) {
        const util::BitVector& column = columns.Column(j);
        PutWords(out, column.data(), column.num_words());
        PutZeros(out, (stride - column.num_words()) * 8);
      }
    }
  }
  // Push everything through to the sink before reporting success: a full
  // disk often only surfaces at flush time, and returning true on a
  // short write would leave a truncated, unreadable .ifsk behind.
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

bool WriteSketch(std::ostream& out, const SketchFile& file,
                 std::uint16_t version, SketchChecksum checksum) {
  // v1 has no trailer slot, so a checksum request on a legacy file is
  // ignored rather than refused -- the caller's compatibility intent
  // (produce a v1 file) wins.
  if (checksum != SketchChecksum::kCrc32c ||
      version != arena::kVersionArena) {
    return WriteSketchBody(out, file, version);
  }
  // Serialize to memory first: the trailer's CRC covers every body byte,
  // and buffering keeps this a single pass over the payload.
  std::ostringstream body(std::ios::binary);
  if (!WriteSketchBody(body, file, version)) return false;
  const std::string bytes = body.str();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.write(arena::kTrailerMagic, 4);
  PutRaw<std::uint32_t>(out, arena::kChecksumCrc32c);
  PutRaw<std::uint64_t>(out, util::Crc32c(bytes.data(), bytes.size()));
  out.flush();
  return static_cast<bool>(out);
}

std::optional<SketchFile> ReadSketch(std::istream& in, SketchError* error) {
  StreamCursor cursor(in, error);
  std::uint16_t version = 0;
  if (!arena_internal::ReadMagicAndVersion(cursor, &version)) {
    return std::nullopt;
  }
  if (version != arena::kVersionLegacy && version != arena::kVersionArena) {
    cursor.Fail(arena_internal::kVersionOffset, "unsupported format version");
    return std::nullopt;
  }

  SketchFile file;
  std::uint64_t bits = 0;
  if (!arena_internal::ReadHeaderAfterVersion(cursor, &file, &bits)) {
    return std::nullopt;
  }
  file.version = version;
  const bool body_ok =
      version == arena::kVersionLegacy
          ? ReadLegacyPayload(cursor, bits, &file.summary)
          : ReadArenaBody(cursor, bits, file.d, &file.summary);
  if (!body_ok) return std::nullopt;
  return file;
}

bool SaveSketchFile(const std::string& path, const SketchFile& file,
                    std::uint16_t version, SketchChecksum checksum,
                    SketchError* error) {
  std::ostringstream out(std::ios::binary);
  if (!WriteSketch(out, file, version, checksum)) {
    if (error != nullptr) {
      error->message = "unserializable sketch (bad params, name, or version)";
      error->offset = 0;
    }
    return false;
  }
  const std::string bytes = out.str();
  std::string detail;
  if (!util::WriteFileAtomic(path, bytes.data(), bytes.size(), &detail)) {
    if (error != nullptr) {
      error->message = std::move(detail);
      error->offset = 0;
    }
    return false;
  }
  return true;
}

std::optional<SketchFile> LoadSketchFile(const std::string& path,
                                         SketchError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      error->message = "cannot open file";
      error->offset = 0;
    }
    return std::nullopt;
  }
  return ReadSketch(in, error);
}

std::unique_ptr<core::SketchAlgorithm> ResolveAlgorithm(
    const SketchFile& file) {
  return BuiltinRegistry().Create(file.algorithm);
}

std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
    const SketchFile& file) {
  const auto algo = ResolveAlgorithm(file);
  if (algo == nullptr) return nullptr;
  return algo->LoadEstimator(file.summary, file.params, file.d, file.n);
}

std::unique_ptr<core::FrequencyIndicator> LoadIndicator(
    const SketchFile& file) {
  const auto algo = ResolveAlgorithm(file);
  if (algo == nullptr) return nullptr;
  return algo->LoadIndicator(file.summary, file.params, file.d, file.n);
}

}  // namespace ifsketch::sketch
