#include "sketch/sketch_file.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

#include "sketch/builtin_algorithms.h"

namespace ifsketch::sketch {
namespace {

constexpr char kMagic[4] = {'I', 'F', 'S', 'K'};
constexpr std::uint16_t kVersion = 1;

template <typename T>
void PutRaw(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool WriteSketch(std::ostream& out, const SketchFile& file) {
  // Refuse to emit a file ReadSketch would reject: nothing serializable
  // may be unloadable. The name length must fit its u16 header field.
  if (!core::ValidSketchParams(file.params)) return false;
  if (file.algorithm.size() > 0xffff) return false;
  out.write(kMagic, 4);
  PutRaw<std::uint16_t>(out, kVersion);
  PutRaw<std::uint16_t>(out,
                        static_cast<std::uint16_t>(file.algorithm.size()));
  out.write(file.algorithm.data(),
            static_cast<std::streamsize>(file.algorithm.size()));
  PutRaw<std::uint32_t>(out, static_cast<std::uint32_t>(file.params.k));
  PutRaw<double>(out, file.params.eps);
  PutRaw<double>(out, file.params.delta);
  PutRaw<std::uint8_t>(out, file.params.scope == core::Scope::kForAll ? 0
                                                                      : 1);
  PutRaw<std::uint8_t>(
      out, file.params.answer == core::Answer::kIndicator ? 0 : 1);
  PutRaw<std::uint64_t>(out, file.n);
  PutRaw<std::uint64_t>(out, file.d);
  PutRaw<std::uint64_t>(out, file.summary.size());
  // Pack bits LSB-first into bytes.
  std::vector<char> bytes((file.summary.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < file.summary.size(); ++i) {
    if (file.summary.Get(i)) bytes[i / 8] |= static_cast<char>(1 << (i % 8));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  // Push everything through to the sink before reporting success: a full
  // disk often only surfaces at flush time, and returning true on a
  // short write would leave a truncated, unreadable .ifsk behind.
  out.flush();
  return static_cast<bool>(out);
}

std::optional<SketchFile> ReadSketch(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) return std::nullopt;
  std::uint16_t version = 0;
  if (!GetRaw(in, version) || version != kVersion) return std::nullopt;

  SketchFile file;
  std::uint16_t name_len = 0;
  if (!GetRaw(in, name_len)) return std::nullopt;
  file.algorithm.resize(name_len);
  in.read(file.algorithm.data(), name_len);
  if (!in) return std::nullopt;

  std::uint32_t k = 0;
  std::uint8_t scope = 0, answer = 0;
  std::uint64_t n = 0, d = 0, bits = 0;
  if (!GetRaw(in, k) || !GetRaw(in, file.params.eps) ||
      !GetRaw(in, file.params.delta) || !GetRaw(in, scope) ||
      !GetRaw(in, answer) || !GetRaw(in, n) || !GetRaw(in, d) ||
      !GetRaw(in, bits)) {
    return std::nullopt;
  }
  // Enum bytes must name a real enumerator; a corrupt byte would otherwise
  // smuggle an invalid Scope/Answer into SketchParams and misconfigure
  // every downstream loader.
  if (scope > 1 || answer > 1) return std::nullopt;
  // A bit count within 7 of 2^64 would overflow the byte-count
  // computation below and skip the payload read entirely.
  if (bits >= std::numeric_limits<std::uint64_t>::max() - 7) {
    return std::nullopt;
  }
  // Parameter sanity: k is a cardinality, eps/delta are probabilities the
  // query procedures divide by and take logs of.
  file.params.k = k;
  if (!core::ValidSketchParams(file.params)) return std::nullopt;
  file.params.scope = scope == 0 ? core::Scope::kForAll
                                 : core::Scope::kForEach;
  file.params.answer =
      answer == 0 ? core::Answer::kIndicator : core::Answer::kEstimator;
  file.n = static_cast<std::size_t>(n);
  file.d = static_cast<std::size_t>(d);

  // Read the payload in bounded chunks: a corrupt bit count must fail with
  // nullopt once the stream runs dry, not attempt one giant allocation.
  const std::uint64_t num_bytes = (bits + 7) / 8;
  std::vector<char> bytes;
  bytes.reserve(static_cast<std::size_t>(
      num_bytes < (std::uint64_t{1} << 20) ? num_bytes : (1 << 20)));
  constexpr std::uint64_t kChunk = 64 * 1024;
  char chunk[kChunk];
  for (std::uint64_t got = 0; got < num_bytes;) {
    const std::uint64_t want =
        num_bytes - got < kChunk ? num_bytes - got : kChunk;
    in.read(chunk, static_cast<std::streamsize>(want));
    if (static_cast<std::uint64_t>(in.gcount()) != want) return std::nullopt;
    bytes.insert(bytes.end(), chunk, chunk + want);
    got += want;
  }
  file.summary = util::BitVector(static_cast<std::size_t>(bits));
  for (std::size_t i = 0; i < bits; ++i) {
    if ((bytes[i / 8] >> (i % 8)) & 1) file.summary.Set(i, true);
  }
  return file;
}

bool SaveSketchFile(const std::string& path, const SketchFile& file) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  if (!WriteSketch(out, file)) return false;
  // close() is the last point the filesystem can report a failed write;
  // Engine::Save surfaces this result to its caller.
  out.close();
  return !out.fail();
}

std::optional<SketchFile> LoadSketchFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return ReadSketch(in);
}

std::unique_ptr<core::SketchAlgorithm> ResolveAlgorithm(
    const SketchFile& file) {
  return BuiltinRegistry().Create(file.algorithm);
}

std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
    const SketchFile& file) {
  const auto algo = ResolveAlgorithm(file);
  if (algo == nullptr) return nullptr;
  return algo->LoadEstimator(file.summary, file.params, file.d, file.n);
}

std::unique_ptr<core::FrequencyIndicator> LoadIndicator(
    const SketchFile& file) {
  const auto algo = ResolveAlgorithm(file);
  if (algo == nullptr) return nullptr;
  return algo->LoadIndicator(file.summary, file.params, file.d, file.n);
}

}  // namespace ifsketch::sketch
