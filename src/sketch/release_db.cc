#include "sketch/release_db.h"

#include "core/column_store.h"
#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {
namespace {

/// Queries the decoded database exactly. Batched queries go through a
/// lazily-built ColumnStore so the row scans are shared across the batch;
/// counts are exact either way, so answers match the scalar path bit for
/// bit.
class ExactEstimator : public core::FrequencyEstimator {
 public:
  explicit ExactEstimator(core::Database db) : db_(std::move(db)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    return db_.Frequency(t);
  }

  void EstimateMany(const std::vector<core::Itemset>& ts,
                    std::vector<double>* answers) const override {
    if (db_.num_rows() == 0) {
      answers->assign(ts.size(), 0.0);
      return;
    }
    if (columns_ == nullptr) {
      columns_ = std::make_unique<core::ColumnStore>(db_);
    }
    std::vector<std::size_t> counts;
    columns_->SupportCounts(ts, &counts);
    answers->resize(ts.size());
    const double n = static_cast<double>(db_.num_rows());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      (*answers)[i] = static_cast<double>(counts[i]) / n;
    }
  }

 private:
  core::Database db_;
  mutable std::unique_ptr<core::ColumnStore> columns_;  // built on demand
};

}  // namespace

util::BitVector ReleaseDbSketch::Build(const core::Database& db,
                                       const core::SketchParams& /*params*/,
                                       util::Rng& /*rng*/) const {
  util::BitWriter w;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    w.WriteBits(db.Row(i));
  }
  return w.Finish();
}

std::unique_ptr<core::FrequencyEstimator> ReleaseDbSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& /*params*/,
    std::size_t d, std::size_t n) const {
  return std::make_unique<ExactEstimator>(Decode(summary, d, n));
}

std::size_t ReleaseDbSketch::PredictedSizeBits(
    std::size_t n, std::size_t d,
    const core::SketchParams& /*params*/) const {
  return n * d;
}

core::Database ReleaseDbSketch::Decode(const util::BitVector& summary,
                                       std::size_t d, std::size_t n) {
  IFSKETCH_CHECK_EQ(summary.size(), n * d);
  util::BitReader r(summary);
  std::vector<util::BitVector> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows.push_back(r.ReadBits(d));
  return core::Database::FromRows(std::move(rows));
}

}  // namespace ifsketch::sketch
