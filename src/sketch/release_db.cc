#include "sketch/release_db.h"

#include "core/column_store.h"
#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {
namespace {

/// Queries the decoded database exactly, through a column store built
/// once at load time. Counts are exact integers on either layout, so
/// scalar and batched answers are bit-identical; with no lazily-built
/// cache the view is immutable after construction and safe for
/// concurrent queries. Batched queries fan out across the default
/// thread pool inside ColumnStore::SupportCounts.
class ExactEstimator : public core::FrequencyEstimator {
 public:
  explicit ExactEstimator(core::ColumnStore columns)
      : columns_(std::move(columns)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    return columns_.Frequency(t);
  }

  void EstimateMany(const std::vector<core::Itemset>& ts,
                    std::vector<double>* answers) const override {
    if (columns_.num_rows() == 0) {
      answers->assign(ts.size(), 0.0);
      return;
    }
    std::vector<std::size_t> counts;
    columns_.SupportCounts(ts, &counts);
    answers->resize(ts.size());
    const double n = static_cast<double>(columns_.num_rows());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      (*answers)[i] = static_cast<double>(counts[i]) / n;
    }
  }

 private:
  core::ColumnStore columns_;
};

}  // namespace

util::BitVector ReleaseDbSketch::Build(const core::Database& db,
                                       const core::SketchParams& /*params*/,
                                       util::Rng& /*rng*/) const {
  util::BitWriter w;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    w.WriteBits(db.Row(i));
  }
  return w.Finish();
}

std::unique_ptr<core::FrequencyEstimator> ReleaseDbSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& /*params*/,
    std::size_t d, std::size_t n) const {
  // The summary is the row-major database itself; decode straight into
  // columns (no intermediate row database) and adopt them in O(d).
  IFSKETCH_CHECK_EQ(summary.size(), n * d);
  return std::make_unique<ExactEstimator>(
      core::ColumnStore::FromRowMajorBits(summary, d));
}

std::unique_ptr<core::FrequencyEstimator>
ReleaseDbSketch::LoadEstimatorFromColumns(core::ColumnStore columns,
                                          const util::BitVector& summary,
                                          const core::SketchParams& /*params*/,
                                          std::size_t d, std::size_t n) const {
  // Pre-transposed columns (usually borrowed views over an mmap'd arena
  // section): same exact estimator, no decode pass at all.
  IFSKETCH_CHECK_EQ(summary.size(), n * d);
  IFSKETCH_CHECK_EQ(columns.num_columns(), d);
  IFSKETCH_CHECK_EQ(columns.num_rows(), n);
  return std::make_unique<ExactEstimator>(std::move(columns));
}

std::unique_ptr<core::FrequencyIndicator>
ReleaseDbSketch::LoadIndicatorFromColumns(core::ColumnStore columns,
                                          const util::BitVector& summary,
                                          const core::SketchParams& params,
                                          std::size_t d, std::size_t n) const {
  // Same composition as SketchAlgorithm::LoadIndicator's default --
  // threshold the estimator at 0.75*eps -- but over the borrowed
  // columns, so indicator queries answer identically with no decode.
  return std::make_unique<core::ThresholdIndicator>(
      LoadEstimatorFromColumns(std::move(columns), summary, params, d, n),
      0.75 * params.eps);
}

std::size_t ReleaseDbSketch::PredictedSizeBits(
    std::size_t n, std::size_t d,
    const core::SketchParams& /*params*/) const {
  return n * d;
}

core::Database ReleaseDbSketch::Decode(const util::BitVector& summary,
                                       std::size_t d, std::size_t n) {
  IFSKETCH_CHECK_EQ(summary.size(), n * d);
  util::BitReader r(summary);
  std::vector<util::BitVector> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows.push_back(r.ReadBits(d));
  return core::Database::FromRows(std::move(rows));
}

}  // namespace ifsketch::sketch
