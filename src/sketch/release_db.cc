#include "sketch/release_db.h"

#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {
namespace {

/// Queries the decoded database exactly.
class ExactEstimator : public core::FrequencyEstimator {
 public:
  explicit ExactEstimator(core::Database db) : db_(std::move(db)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    return db_.Frequency(t);
  }

 private:
  core::Database db_;
};

}  // namespace

util::BitVector ReleaseDbSketch::Build(const core::Database& db,
                                       const core::SketchParams& /*params*/,
                                       util::Rng& /*rng*/) const {
  util::BitWriter w;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    w.WriteBits(db.Row(i));
  }
  return w.Finish();
}

std::unique_ptr<core::FrequencyEstimator> ReleaseDbSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& /*params*/,
    std::size_t d, std::size_t n) const {
  return std::make_unique<ExactEstimator>(Decode(summary, d, n));
}

std::size_t ReleaseDbSketch::PredictedSizeBits(
    std::size_t n, std::size_t d,
    const core::SketchParams& /*params*/) const {
  return n * d;
}

core::Database ReleaseDbSketch::Decode(const util::BitVector& summary,
                                       std::size_t d, std::size_t n) {
  IFSKETCH_CHECK_EQ(summary.size(), n * d);
  util::BitReader r(summary);
  std::vector<util::BitVector> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rows.push_back(r.ReadBits(d));
  return core::Database::FromRows(std::move(rows));
}

}  // namespace ifsketch::sketch
