// Self-describing sketch files.
//
// A summary is just a bit string (Definition 5), but shipping one to
// another process requires carrying the public context: which algorithm,
// the (k, eps, delta, scope, answer) parameters, and the database shape
// (n, d). This module defines a small framed file format:
//   magic "IFSK", version u16, algorithm-name (u16 length + bytes),
//   k u32, eps f64, delta f64, scope u8, answer u8, n u64, d u64,
//   bit-count u64, payload bytes (LSB-first within each byte).
//
// ReadSketch validates every header field (magic, version, enum bytes,
// parameter ranges) and returns nullopt on anything malformed. The
// carried algorithm name is what makes files self-describing: pass a
// loaded SketchFile to ResolveAlgorithm() to get the producing
// SketchAlgorithm back from the registry, or use Engine::Open (engine.h)
// which does the whole load-resolve-query wiring in one call.
#ifndef IFSKETCH_SKETCH_SKETCH_FILE_H_
#define IFSKETCH_SKETCH_SKETCH_FILE_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/sketch.h"
#include "util/bitvector.h"

namespace ifsketch::sketch {

/// Everything needed to reload and query a summary.
struct SketchFile {
  std::string algorithm;
  core::SketchParams params;
  std::size_t n = 0;
  std::size_t d = 0;
  util::BitVector summary;
};

/// Serializes to a binary stream. Returns false on I/O failure.
bool WriteSketch(std::ostream& out, const SketchFile& file);

/// Parses a stream written by WriteSketch; nullopt on malformed input.
std::optional<SketchFile> ReadSketch(std::istream& in);

/// File-path conveniences.
bool SaveSketchFile(const std::string& path, const SketchFile& file);
std::optional<SketchFile> LoadSketchFile(const std::string& path);

/// Resolves `file.algorithm` through the built-in registry back to a live
/// algorithm, so the file can be queried without knowing its producer.
/// Returns nullptr for names no registry entry answers to.
std::unique_ptr<core::SketchAlgorithm> ResolveAlgorithm(
    const SketchFile& file);

/// Resolve + LoadEstimator / LoadIndicator in one step; nullptr when the
/// algorithm cannot be resolved.
std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
    const SketchFile& file);
std::unique_ptr<core::FrequencyIndicator> LoadIndicator(
    const SketchFile& file);

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_SKETCH_FILE_H_
