// Self-describing sketch files.
//
// A summary is just a bit string (Definition 5), but shipping one to
// another process requires carrying the public context: which algorithm,
// the (k, eps, delta, scope, answer) parameters, and the database shape
// (n, d). This module defines a small framed file format with two
// on-disk versions behind one "IFSK" magic:
//
//   v1 (legacy, byte-packed):
//     magic "IFSK", version u16=1, algorithm-name (u16 length + bytes),
//     k u32, eps f64, delta f64, scope u8, answer u8, n u64, d u64,
//     bit-count u64, payload bytes (LSB-first within each byte).
//
//   v2 (arena, the version WriteSketch emits):
//     the same header fields, then a section table
//       section-count u32, then per section:
//         kind u32, flags u32 (=0), byte-offset u64, word-count u64
//     followed by the sections themselves, each starting at a byte
//     offset that is a multiple of 64 (from the file start) and holding
//     raw little-endian u64 words. Section kinds:
//       1  summary words: the payload bits packed LSB-first into
//          ceil(bits/64) words, trailing bits zero -- the exact
//          in-memory util::BitVector layout, so a mapped file can be
//          queried through views with no decode (sketch/sketch_view.h).
//       2  column words: present only when the producing algorithm
//          declares a row-major payload (SketchAlgorithm::
//          HasRowMajorPayload): the payload's bits/d rows transposed
//          into d columns of bits/d bits, each column padded to
//          arena::ColumnStrideWords(rows) words so every column starts
//          64-byte aligned -- what ColumnStore::FromColumnWords adopts
//          with zero copies.
//     Sections appear in ascending kind order, each at the first
//     64-byte boundary after its predecessor, padding bytes zero, and
//     the file ends exactly where the last section ends. Everything is
//     offset-table addressed, so the image is relocatable: validation
//     never chases pointers, only bounds-checked offsets.
//
//     Trust model of the column section: it is DERIVED data, redundant
//     with the summary, and WriteSketch guarantees the two agree.
//     Validators check its structure (shape, alignment, tail bits,
//     padding) but deliberately not transpose-equality -- that would
//     cost the O(payload) pass zero-copy loading exists to avoid. A
//     corrupted column data word is therefore as undetectable as a
//     flipped payload bit in a v1 file, and since the mapped path
//     queries the section directly, such corruption shows up in mapped
//     answers (the copying path re-transposes the summary instead).
//     Golden files and the CI both-path diffs police producers.
//
// ReadSketch validates every header field (magic, version, enum bytes,
// parameter ranges, section framing) and returns nullopt on anything
// malformed -- pass a SketchError to learn what was wrong and the byte
// offset of the first invalid field. The carried algorithm name is what
// makes files self-describing: pass a loaded SketchFile to
// ResolveAlgorithm() to get the producing SketchAlgorithm back from the
// registry, or use Engine::Open (engine.h) which does the whole
// load-resolve-query wiring in one call (memory-mapping v2 files for
// zero-copy loads; ReadSketch here is the copying path).
#ifndef IFSKETCH_SKETCH_SKETCH_FILE_H_
#define IFSKETCH_SKETCH_SKETCH_FILE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/sketch.h"
#include "util/bitvector.h"

namespace ifsketch::sketch {

/// Shared layout constants of the v2 arena framing (used by the writer
/// here and the in-place validator in sketch_view.h).
namespace arena {

inline constexpr std::uint16_t kVersionLegacy = 1;
inline constexpr std::uint16_t kVersionArena = 2;

/// Every section starts at a multiple of this (from the file start), so
/// a page-aligned mapping makes every section pointer 64-byte aligned --
/// cache-line and AVX-512-lane aligned for the word kernels.
inline constexpr std::size_t kSectionAlign = 64;

enum SectionKind : std::uint32_t {
  kSummaryWords = 1,
  kColumnWords = 2,
};

/// Section-table entries are {kind u32, flags u32, offset u64, words u64}.
inline constexpr std::size_t kSectionEntryBytes = 24;
inline constexpr std::uint32_t kMaxSections = 4;

/// Words from one column's start to the next in a kColumnWords section:
/// ceil(rows/64) data words rounded up to a whole 64-byte line.
inline constexpr std::size_t ColumnStrideWords(std::size_t rows) {
  return (((rows + 63) / 64) + 7) / 8 * 8;
}

/// Optional integrity trailer (PR 10), appended after the last section
/// of a v2 file: magic "IFCT" (4 bytes), checksum kind u32, checksum
/// value u64 -- 16 bytes covering every byte before the trailer
/// (header + section table + sections + padding). Both parsers accept a
/// v2 file that ends exactly at the last section (trailer-less, the
/// pre-PR-10 framing, readable forever) or exactly kTrailerBytes later
/// with a valid trailer; anything else is rejected. v1 files never
/// carry a trailer.
inline constexpr std::size_t kTrailerBytes = 16;
inline constexpr char kTrailerMagic[4] = {'I', 'F', 'C', 'T'};

enum ChecksumKind : std::uint32_t {
  kChecksumCrc32c = 1,  ///< util::Crc32c over [0, trailer start)
};

}  // namespace arena

/// Whether WriteSketch appends the integrity trailer (v2 only; requests
/// to write a checksummed v1 file are ignored, v1 has no trailer slot).
enum class SketchChecksum : std::uint8_t {
  kNone = 0,
  kCrc32c = 1,
};

/// Everything needed to reload and query a summary.
struct SketchFile {
  std::string algorithm;
  core::SketchParams params;
  std::size_t n = 0;
  std::size_t d = 0;
  util::BitVector summary;
  /// Format version this was read from (arena::kVersionLegacy or
  /// arena::kVersionArena); 0 for in-memory files never deserialized.
  /// Informational only -- WriteSketch takes the version to emit
  /// explicitly.
  std::uint16_t version = 0;
};

/// What was malformed and where: `offset` is the byte offset (from the
/// start of the stream/image) of the first field that failed validation.
struct SketchError {
  std::string message;
  std::uint64_t offset = 0;
};

/// Serializes to a binary stream at the given format version (callers
/// pass arena::kVersionLegacy to produce v1 files for compatibility
/// tests), optionally ending a v2 file with the integrity trailer.
/// Returns false on I/O failure or an unwritable version.
bool WriteSketch(std::ostream& out, const SketchFile& file,
                 std::uint16_t version = arena::kVersionArena,
                 SketchChecksum checksum = SketchChecksum::kNone);

/// Parses a stream written by WriteSketch (either version); nullopt on
/// malformed input, with the reason and offset in *error when provided.
std::optional<SketchFile> ReadSketch(std::istream& in,
                                     SketchError* error = nullptr);

/// Atomically replaces `path` with the serialized sketch: write
/// "<path>.tmp", fsync, rename over the target, fsync the directory --
/// a crash leaves the old file or the new one, never a hybrid. On
/// failure *error (when provided) carries the errno/strerror detail of
/// what went wrong, so callers can say WHY a save failed.
bool SaveSketchFile(const std::string& path, const SketchFile& file,
                    std::uint16_t version = arena::kVersionArena,
                    SketchChecksum checksum = SketchChecksum::kNone,
                    SketchError* error = nullptr);
std::optional<SketchFile> LoadSketchFile(const std::string& path,
                                         SketchError* error = nullptr);

/// Resolves `file.algorithm` through the built-in registry back to a live
/// algorithm, so the file can be queried without knowing its producer.
/// Returns nullptr for names no registry entry answers to.
std::unique_ptr<core::SketchAlgorithm> ResolveAlgorithm(
    const SketchFile& file);

/// Resolve + LoadEstimator / LoadIndicator in one step; nullptr when the
/// algorithm cannot be resolved.
std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
    const SketchFile& file);
std::unique_ptr<core::FrequencyIndicator> LoadIndicator(
    const SketchFile& file);

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_SKETCH_FILE_H_
