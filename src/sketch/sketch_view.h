// Zero-copy views over arena (v2) IFSK images.
//
// ReadSketch (sketch_file.h) is the copying path: it streams a file and
// materializes an owned summary. This module is the mapped path: given
// the raw bytes of a v2 file -- normally a util::MappedFile, so the
// bytes are the page cache itself -- ViewSketchImage validates the whole
// image in place (same validate-everything discipline and same
// acceptance set as ReadSketch: magic, version, enum bytes, parameter
// ranges, section framing, alignment, tail bits) and returns a
// SketchView whose summary is a borrowed util::BitVector::View over the
// mapping and whose column section, when present, is described by an
// ArenaColumns ready for core::ColumnStore::FromColumnWords. Nothing is
// decoded and nothing is copied: opening a mapped sketch is O(header +
// d) regardless of payload size, and the SIMD query kernels run straight
// out of the mapping.
//
// Lifetime: the views borrow the image. SketchView keeps the MappedFile
// alive via shared_ptr when opened through ViewSketchFile; callers using
// the raw-pointer overload (tests, fuzzers) must keep their buffer alive
// and 8-byte aligned themselves.
#ifndef IFSKETCH_SKETCH_SKETCH_VIEW_H_
#define IFSKETCH_SKETCH_SKETCH_VIEW_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sketch/sketch_file.h"
#include "util/mapped_file.h"

namespace ifsketch::sketch {

/// The column-words section of an arena image: d columns of `rows` bits,
/// column j's words at words[j*stride_words ..]; borrowed storage.
struct ArenaColumns {
  const std::uint64_t* words = nullptr;
  std::size_t rows = 0;
  std::size_t d = 0;
  std::size_t stride_words = 0;
};

/// A validated, zero-copy window onto an arena sketch image. `file` has
/// the same metadata ReadSketch would produce, but file.summary is a
/// view borrowing the image (file.summary.is_view() is true).
struct SketchView {
  SketchFile file;
  std::optional<ArenaColumns> columns;
  /// Keeps the bytes alive when opened via ViewSketchFile; null when the
  /// caller owns the image buffer.
  std::shared_ptr<const util::MappedFile> mapping;
};

/// Validates a v2 image in place. `data` must be 8-byte aligned and stay
/// alive for the returned view's lifetime. Returns nullopt on anything
/// malformed -- including a well-formed v1 image (v1 has no aligned word
/// sections to view; read it through the copying path) -- with the
/// reason and byte offset in *error when provided.
std::optional<SketchView> ViewSketchImage(const unsigned char* data,
                                          std::size_t size,
                                          SketchError* error = nullptr);

/// Maps `path` (util::MappedFile::Open, with its read-whole-file
/// fallback) and validates it in place; the returned view owns the
/// mapping. On failure *error names the file-level or validation error.
std::optional<SketchView> ViewSketchFile(const std::string& path,
                                         SketchError* error = nullptr);

/// The format version of an IFSK image: arena::kVersionLegacy,
/// arena::kVersionArena, or 0 when the bytes do not start with a
/// well-formed IFSK magic + version. Cheap (reads 6 bytes); used to
/// route Open between the mapped and copying paths.
std::uint16_t PeekSketchVersion(const unsigned char* data, std::size_t size);

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_SKETCH_VIEW_H_
