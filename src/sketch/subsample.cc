#include "sketch/subsample.h"

#include "core/column_store.h"
#include "util/bitio.h"
#include "util/check.h"
#include "util/stats.h"

namespace ifsketch::sketch {
namespace {

/// Evaluates queries on the decoded sample through a column store built
/// once at load time. Support counts are exact integers whether computed
/// by a row scan or a popcount of ANDed columns, so scalar and batched
/// answers are bit-identical -- and with no lazily-built cache, the view
/// is immutable after construction and safe to query from any number of
/// threads concurrently. Batched queries additionally fan out across the
/// default thread pool inside ColumnStore::SupportCounts.
class SampleEstimator : public core::FrequencyEstimator {
 public:
  explicit SampleEstimator(core::ColumnStore columns)
      : columns_(std::move(columns)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    return columns_.Frequency(t);
  }

  void EstimateMany(const std::vector<core::Itemset>& ts,
                    std::vector<double>* answers) const override {
    if (columns_.num_rows() == 0) {
      answers->assign(ts.size(), 0.0);
      return;
    }
    std::vector<std::size_t> counts;
    columns_.SupportCounts(ts, &counts);
    answers->resize(ts.size());
    const double n = static_cast<double>(columns_.num_rows());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      (*answers)[i] = static_cast<double>(counts[i]) / n;
    }
  }

 private:
  core::ColumnStore columns_;
};

/// Indicator decision rule: declare frequent iff the sample frequency is
/// at least 3eps/4, the midpoint of the (eps/2, eps] uncertainty band.
class SampleIndicator : public core::FrequencyIndicator {
 public:
  SampleIndicator(core::ColumnStore columns, double eps)
      : estimator_(std::move(columns)), eps_(eps) {}

  bool IsFrequent(const core::Itemset& t) const override {
    return estimator_.EstimateFrequency(t) >= 0.75 * eps_;
  }

  void AreFrequent(const std::vector<core::Itemset>& ts,
                   std::vector<bool>* answers) const override {
    std::vector<double> estimates;
    estimator_.EstimateMany(ts, &estimates);
    answers->resize(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      (*answers)[i] = estimates[i] >= 0.75 * eps_;
    }
  }

 private:
  SampleEstimator estimator_;
  double eps_;
};

}  // namespace

std::size_t SubsampleSketch::SampleCount(const core::SketchParams& params,
                                         std::size_t d) {
  switch (params.scope) {
    case core::Scope::kForEach:
      return params.answer == core::Answer::kIndicator
                 ? util::IndicatorSampleCount(params.eps, params.delta)
                 : util::EstimatorSampleCount(params.eps, params.delta);
    case core::Scope::kForAll:
      return params.answer == core::Answer::kIndicator
                 ? util::ForAllIndicatorSampleCount(params.eps, params.delta,
                                                    d, params.k)
                 : util::ForAllEstimatorSampleCount(params.eps, params.delta,
                                                    d, params.k);
  }
  return 0;
}

util::BitVector SubsampleSketch::Build(const core::Database& db,
                                       const core::SketchParams& params,
                                       util::Rng& rng) const {
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  const std::size_t s = SampleCount(params, db.num_columns());
  util::BitWriter w;
  for (std::size_t i = 0; i < s; ++i) {
    const std::size_t row = rng.UniformInt(db.num_rows());
    w.WriteBits(db.Row(row));
  }
  return w.Finish();
}

core::Database SubsampleSketch::DecodeSample(const util::BitVector& summary,
                                             std::size_t d) {
  IFSKETCH_CHECK_GT(d, 0u);
  IFSKETCH_CHECK_EQ(summary.size() % d, 0u);
  const std::size_t s = summary.size() / d;
  util::BitReader r(summary);
  std::vector<util::BitVector> rows;
  rows.reserve(s);
  for (std::size_t i = 0; i < s; ++i) rows.push_back(r.ReadBits(d));
  return core::Database::FromRows(std::move(rows));
}

std::unique_ptr<core::FrequencyEstimator> SubsampleSketch::LoadEstimator(
    const util::BitVector& summary, const core::SketchParams& /*params*/,
    std::size_t d, std::size_t /*n*/) const {
  // The summary is row-major sample bits; decode straight into columns
  // (no intermediate row database) and adopt them in O(d).
  return std::make_unique<SampleEstimator>(
      core::ColumnStore::FromRowMajorBits(summary, d));
}

std::unique_ptr<core::FrequencyIndicator> SubsampleSketch::LoadIndicator(
    const util::BitVector& summary, const core::SketchParams& params,
    std::size_t d, std::size_t /*n*/) const {
  return std::make_unique<SampleIndicator>(
      core::ColumnStore::FromRowMajorBits(summary, d), params.eps);
}

std::unique_ptr<core::FrequencyEstimator>
SubsampleSketch::LoadEstimatorFromColumns(core::ColumnStore columns,
                                          const util::BitVector& summary,
                                          const core::SketchParams& /*params*/,
                                          std::size_t d,
                                          std::size_t /*n*/) const {
  // Pre-transposed columns (usually borrowed views over an mmap'd arena
  // section): same estimator, no decode pass at all.
  IFSKETCH_CHECK_EQ(columns.num_columns(), d);
  IFSKETCH_CHECK_EQ(columns.num_rows() * d, summary.size());
  return std::make_unique<SampleEstimator>(std::move(columns));
}

std::unique_ptr<core::FrequencyIndicator>
SubsampleSketch::LoadIndicatorFromColumns(core::ColumnStore columns,
                                          const util::BitVector& summary,
                                          const core::SketchParams& params,
                                          std::size_t d,
                                          std::size_t /*n*/) const {
  IFSKETCH_CHECK_EQ(columns.num_columns(), d);
  IFSKETCH_CHECK_EQ(columns.num_rows() * d, summary.size());
  return std::make_unique<SampleIndicator>(std::move(columns), params.eps);
}

std::size_t SubsampleSketch::PredictedSizeBits(
    std::size_t /*n*/, std::size_t d, const core::SketchParams& params) const {
  return SampleCount(params, d) * d;
}

util::BitVector SubsampleWithoutReplacementSketch::Build(
    const core::Database& db, const core::SketchParams& params,
    util::Rng& rng) const {
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  const std::size_t s = SampleCount(params, db.num_columns());
  if (s > db.num_rows()) {
    // Not enough distinct rows: with-replacement is the only option that
    // keeps the summary format (s rows).
    return SubsampleSketch::Build(db, params, rng);
  }
  util::BitWriter w;
  for (std::size_t row : rng.SampleWithoutReplacement(db.num_rows(), s)) {
    w.WriteBits(db.Row(row));
  }
  return w.Finish();
}

}  // namespace ifsketch::sketch
