#include "sketch/envelope.h"

#include "sketch/release_answers.h"
#include "sketch/release_db.h"
#include "sketch/subsample.h"

namespace ifsketch::sketch {

EnvelopeReport NaiveEnvelope(std::size_t n, std::size_t d,
                             const core::SketchParams& params) {
  const ReleaseDbSketch release_db;
  const ReleaseAnswersSketch release_answers;
  const SubsampleSketch subsample;

  EnvelopeReport r;
  r.release_db_bits = release_db.PredictedSizeBits(n, d, params);
  r.release_answers_bits = release_answers.PredictedSizeBits(n, d, params);
  r.subsample_bits = subsample.PredictedSizeBits(n, d, params);

  r.winner = release_db.name();
  r.winner_bits = r.release_db_bits;
  if (r.release_answers_bits < r.winner_bits) {
    r.winner = release_answers.name();
    r.winner_bits = r.release_answers_bits;
  }
  if (r.subsample_bits < r.winner_bits) {
    r.winner = subsample.name();
    r.winner_bits = r.subsample_bits;
  }
  return r;
}

std::unique_ptr<core::SketchAlgorithm> BestNaiveAlgorithm(
    std::size_t n, std::size_t d, const core::SketchParams& params) {
  const EnvelopeReport r = NaiveEnvelope(n, d, params);
  if (r.winner == "RELEASE-DB") return std::make_unique<ReleaseDbSketch>();
  if (r.winner == "RELEASE-ANSWERS") {
    return std::make_unique<ReleaseAnswersSketch>();
  }
  return std::make_unique<SubsampleSketch>();
}

}  // namespace ifsketch::sketch
