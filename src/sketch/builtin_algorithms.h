// Registration of the library's sketch algorithms into a SketchRegistry.
//
// core::SketchRegistry cannot depend on the concrete algorithms (they
// live above core in the layering), so this is where the built-ins are
// wired in: RELEASE-DB, RELEASE-ANSWERS, SUBSAMPLE, SUBSAMPLE-WOR,
// IMPORTANCE-SAMPLE, and the MEDIAN-BOOST(inner) combinator.
#ifndef IFSKETCH_SKETCH_BUILTIN_ALGORITHMS_H_
#define IFSKETCH_SKETCH_BUILTIN_ALGORITHMS_H_

#include "core/registry.h"

namespace ifsketch::sketch {

/// Adds every built-in algorithm to `registry` (overwriting same-name
/// entries, so calling twice is harmless).
void RegisterBuiltinAlgorithms(core::SketchRegistry& registry);

/// The default registry, with built-ins guaranteed registered. All
/// resolution paths (Engine::Open, ResolveAlgorithm) funnel through this.
core::SketchRegistry& BuiltinRegistry();

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_BUILTIN_ALGORITHMS_H_
