// Streaming sketch construction behind the registry.
//
// The paper's §1.2 argument is that row sampling is the optimal streaming
// architecture for itemset frequencies; this module makes that claim
// operational. A StreamingSketch is a SketchAlgorithm mixin whose state
// can be maintained one row at a time (StreamingBuilder) and snapshotted
// at any prefix. The one-shot Build() of every streaming algorithm is
// DEFINED as replaying the database rows in order through a fresh
// builder, so a snapshot taken after observing rows [0, n) is
// bit-identical to Engine::Build over that prefix with the same seed --
// the invariant the ingest subsystem (src/ingest/) and its registry-
// driven tests rely on. Two contract points make that hold:
//
//   - Builders draw from the Rng only inside Observe (never in the const
//     Summary()), so "snapshot then keep streaming" and "stop and build"
//     consume identical random streams up to any prefix.
//   - Summary layouts are fixed functions of (d, params) -- never of the
//     data -- so SketchAlgorithm::PredictedSizeBits stays exact and
//     Engine::FromParts accepts mid-stream snapshots at any rows_seen.
//
// Registered algorithms (sketch/builtin_algorithms.cc):
//   STREAM-SUBSAMPLE   s independent size-1 reservoirs (ReservoirBuilder)
//                      producing SUBSAMPLE's exact summary format, so it
//                      inherits the column-store loaders, arena column
//                      sections and zero-copy mapped loads unchanged.
//   STREAM-STRATIFIED  popcount-stratified reservoirs with proportional
//                      recombination (the registrable, fixed-layout
//                      sibling of the standalone StratifiedSampler).
//   STREAM-IMPORTANCE  weighted reservoirs with Misra-Gries heavy-hitter
//                      gating (stream/misra_gries.h) and Horvitz-Thompson
//                      queries -- rows carrying currently-hot items are
//                      up-weighted as the stream drifts.
#ifndef IFSKETCH_SKETCH_STREAMING_H_
#define IFSKETCH_SKETCH_STREAMING_H_

#include <memory>
#include <vector>

#include "core/sketch.h"
#include "sketch/reservoir.h"
#include "sketch/subsample.h"
#include "stream/misra_gries.h"

namespace ifsketch::sketch {

/// Incremental summary state: one Observe per stream row, snapshot at
/// any prefix. Not thread-safe -- one builder belongs to one ingest
/// thread (src/ingest/ingest.h owns the handoff).
class StreamingBuilder {
 public:
  virtual ~StreamingBuilder() = default;

  /// Observes one stream row (width d). The only method that may draw
  /// from the construction Rng.
  virtual void Observe(const util::BitVector& row) = 0;

  /// Rows observed so far.
  virtual std::size_t rows_seen() const = 0;

  /// Serializes the current state into the algorithm's summary format.
  /// Const and Rng-free: snapshotting must not perturb the stream.
  /// Precondition: at least one row observed.
  virtual util::BitVector Summary() const = 0;

  /// Serializes the builder's COMPLETE internal state -- a superset of
  /// Summary() (reservoir bookkeeping, stratum counts, gating sketches)
  /// -- so RestoreState on a freshly-constructed builder with the same
  /// (d, params) continues the stream bit-identically where this one
  /// stands. The paired Rng is NOT included; checkpoint it alongside
  /// via util::Rng::SaveState (ingest/wal.h does both).
  virtual util::BitVector SaveState() const = 0;

  /// Restores a SaveState() snapshot into this builder. Returns false --
  /// leaving the builder unusable -- when the bits do not decode to a
  /// valid state for this builder's shape; callers treat that as a
  /// corrupt checkpoint, never as data.
  virtual bool RestoreState(const util::BitVector& state) = 0;
};

/// Mixin interface for algorithms that support incremental construction.
/// Deliberately NOT derived from core::SketchAlgorithm so concrete
/// algorithms can inherit an existing SketchAlgorithm (loaders, size
/// accounting) and add streaming on the side; resolve via
/// dynamic_cast<const StreamingSketch*> on a registry-created algorithm.
class StreamingSketch {
 public:
  virtual ~StreamingSketch() = default;

  /// A fresh builder for width-d rows. `rng` must outlive the builder
  /// and be dedicated to it (the builder advances it on every Observe).
  virtual std::unique_ptr<StreamingBuilder> NewBuilder(
      std::size_t d, const core::SketchParams& params,
      util::Rng& rng) const = 0;
};

/// The shared one-shot Build of every streaming algorithm: replay the
/// database rows in order through a fresh builder. This is what makes
/// prefix snapshots bit-identical to one-shot builds by construction.
util::BitVector ReplayBuild(const StreamingSketch& algorithm,
                            const core::Database& db,
                            const core::SketchParams& params, util::Rng& rng);

/// SUBSAMPLE's summary format built by s independent size-1 reservoirs.
/// Everything query-side (column-store loaders, arena column sections,
/// PredictedSizeBits) is inherited; only the sampling procedure differs,
/// exactly like SUBSAMPLE-WOR.
class StreamSubsampleSketch : public SubsampleSketch, public StreamingSketch {
 public:
  std::string name() const override { return "STREAM-SUBSAMPLE"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<StreamingBuilder> NewBuilder(
      std::size_t d, const core::SketchParams& params,
      util::Rng& rng) const override;
};

/// Streaming stratified sampler with a FIXED summary layout (unlike the
/// standalone StratifiedSampler, whose layout depends on stratum
/// occupancy and therefore cannot sit behind PredictedSizeBits). Rows
/// are bucketed by popcount into kStrata strata; each stratum keeps
/// SlotsPerStratum independent size-1 reservoirs plus an exact row
/// count. The summary stores, for every stratum (occupied or not), the
/// count and all slot rows -- H * (64 + c*d) bits regardless of data.
class StratifiedSampleBuilder : public StreamingBuilder {
 public:
  StratifiedSampleBuilder(std::size_t d, const core::SketchParams& params,
                          util::Rng& rng);

  void Observe(const util::BitVector& row) override;
  std::size_t rows_seen() const override { return rows_seen_; }
  util::BitVector Summary() const override;
  util::BitVector SaveState() const override;
  bool RestoreState(const util::BitVector& state) override;

 private:
  struct Stratum {
    std::uint64_t count = 0;  // rows routed to this stratum so far
    std::vector<util::BitVector> slots;
  };

  std::size_t d_;
  std::size_t rows_seen_ = 0;
  std::vector<Stratum> strata_;
  util::Rng* rng_;
};

/// The registrable stratified-sample algorithm (see
/// StratifiedSampleBuilder for the summary layout).
class StreamStratifiedSketch : public core::SketchAlgorithm,
                               public StreamingSketch {
 public:
  /// Popcount buckets: row with popcount pc lands in stratum
  /// min(kStrata-1, pc*kStrata/(d+1)).
  static constexpr std::size_t kStrata = 4;

  /// Reservoir slots per stratum: the SUBSAMPLE sample count split
  /// evenly (rounded up) so total state matches SUBSAMPLE's at equal
  /// parameters.
  static std::size_t SlotsPerStratum(const core::SketchParams& params,
                                     std::size_t d);

  /// The stratum index for a row of width d with the given popcount.
  static std::size_t StratumOf(std::size_t popcount, std::size_t d);

  std::string name() const override { return "STREAM-STRATIFIED"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  std::unique_ptr<StreamingBuilder> NewBuilder(
      std::size_t d, const core::SketchParams& params,
      util::Rng& rng) const override;
};

/// Streaming importance sampler: s weighted size-1 reservoirs where a
/// row's weight is 1 plus the number of its attributes that are
/// currently Misra-Gries heavy hitters (estimated count >= items_seen /
/// kHotFraction), so rows carrying hot items survive longer as the
/// stream drifts. Queries recombine with the Horvitz-Thompson
/// estimator: f = (1/s) sum_slots I{T in row} * W_n / (n * w_slot),
/// clamped to [0, 1]. Summary: W_n as a raw double, then per slot the
/// slot weight (raw double) and the slot row -- 64 + s*(64+d) bits.
class StreamImportanceSketch : public core::SketchAlgorithm,
                              public StreamingSketch {
 public:
  /// Misra-Gries counters tracked by the gating sketch.
  static constexpr std::size_t kHotCounters = 16;
  /// An item is "hot" when its estimated count >= items_seen / this.
  static constexpr std::uint64_t kHotFraction = 16;

  /// Same slot count as SUBSAMPLE at equal parameters.
  static std::size_t SampleCount(const core::SketchParams& params,
                                 std::size_t d);

  std::string name() const override { return "STREAM-IMPORTANCE"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  std::unique_ptr<StreamingBuilder> NewBuilder(
      std::size_t d, const core::SketchParams& params,
      util::Rng& rng) const override;
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_STREAMING_H_
