// SUBSAMPLE (Definition 8): uniform row sampling with replacement.
//
// The summary is s sampled rows (s*d bits) where s follows Lemma 9:
//   for-each indicator:  s = O(eps^-1 log(1/delta))
//   for-each estimator:  s = O(eps^-2 log(1/delta))
//   for-all  indicator:  s = O(eps^-1 log(C(d,k)/delta))
//   for-all  estimator:  s = O(eps^-2 log(C(d,k)/delta))
// Q evaluates the query on the sample. The paper's lower bounds show this
// is space optimal (up to constant / iterated-log factors) on hard inputs.
#ifndef IFSKETCH_SKETCH_SUBSAMPLE_H_
#define IFSKETCH_SKETCH_SUBSAMPLE_H_

#include "core/sketch.h"

namespace ifsketch::sketch {

/// The uniform-row-sampling sketch.
class SubsampleSketch : public core::SketchAlgorithm {
 public:
  std::string name() const override { return "SUBSAMPLE"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;

  std::unique_ptr<core::FrequencyEstimator> LoadEstimator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  std::unique_ptr<core::FrequencyIndicator> LoadIndicator(
      const util::BitVector& summary, const core::SketchParams& params,
      std::size_t d, std::size_t n) const override;

  /// The summary is exactly s rows of d bits, so the arena writer frames
  /// a column section and the mapped load path adopts it with no
  /// transpose (answers bit-identical to the decoding loaders above).
  bool HasRowMajorPayload(const core::SketchParams& params) const override {
    (void)params;
    return true;
  }

  std::unique_ptr<core::FrequencyEstimator> LoadEstimatorFromColumns(
      core::ColumnStore columns, const util::BitVector& summary,
      const core::SketchParams& params, std::size_t d,
      std::size_t n) const override;

  std::unique_ptr<core::FrequencyIndicator> LoadIndicatorFromColumns(
      core::ColumnStore columns, const util::BitVector& summary,
      const core::SketchParams& params, std::size_t d,
      std::size_t n) const override;

  std::size_t PredictedSizeBits(std::size_t n, std::size_t d,
                                const core::SketchParams& params) const override;

  /// The Lemma 9 sample count for the given guarantee.
  static std::size_t SampleCount(const core::SketchParams& params,
                                 std::size_t d);

  /// Recovers the sampled rows as a database (the sample is itself a
  /// database; mining tools run on it directly).
  static core::Database DecodeSample(const util::BitVector& summary,
                                     std::size_t d);
};

/// SUBSAMPLE drawing rows WITHOUT replacement (when s <= n; falls back to
/// with-replacement otherwise). Identical summary format and loaders;
/// hypergeometric concentration strictly dominates binomial, so every
/// Lemma 9 guarantee carries over with the same sample counts.
class SubsampleWithoutReplacementSketch : public SubsampleSketch {
 public:
  std::string name() const override { return "SUBSAMPLE-WOR"; }

  util::BitVector Build(const core::Database& db,
                        const core::SketchParams& params,
                        util::Rng& rng) const override;
};

}  // namespace ifsketch::sketch

#endif  // IFSKETCH_SKETCH_SUBSAMPLE_H_
