#include "sketch/importance_sample.h"

#include <cmath>

#include "core/column_store.h"
#include "sketch/subsample.h"
#include "util/bitio.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace ifsketch::sketch {
namespace {

/// Horvitz-Thompson estimator over weighted samples: with q_i
/// proportional to w(r_i), E[(1/s) sum I{T in r_i} * mean_w / w(r_i)]
/// = f_T, where mean_w = W/n is carried in the summary.
///
/// The sample is transposed into a column store and the per-row
/// coefficients mean_w / w(r_i) are evaluated once, both at load time,
/// so the view is immutable afterwards and safe to query concurrently.
/// Every path -- scalar, batched, parallel chunks -- accumulates hits in
/// ascending row order with the same per-row terms, so the
/// floating-point sum (and therefore the answer) is bit-identical
/// everywhere. Batched queries fan out across the default thread pool
/// and share prefix accumulators between adjacent sibling queries.
class HtEstimator : public core::FrequencyEstimator {
 public:
  HtEstimator(const core::Database& sample, double mean_weight,
              const ImportanceSampleSketch::WeightFn& weight)
      : columns_(sample) {
    coefficients_.resize(sample.num_rows());
    for (std::size_t i = 0; i < sample.num_rows(); ++i) {
      coefficients_[i] = mean_weight / weight(sample.Row(i));
    }
  }

  double EstimateFrequency(const core::Itemset& t) const override {
    const std::size_t s = columns_.num_rows();
    if (s == 0) return 0.0;
    double acc = 0.0;
    const auto attrs = t.Attributes();
    if (attrs.empty()) {
      for (std::size_t i = 0; i < s; ++i) acc += coefficients_[i];
    } else {
      util::BitVector hits = columns_.Column(attrs[0]);
      for (std::size_t i = 1; i < attrs.size(); ++i) {
        hits &= columns_.Column(attrs[i]);
      }
      for (std::size_t i : hits.SetBits()) acc += coefficients_[i];
    }
    const double est = acc / static_cast<double>(s);
    return est < 0.0 ? 0.0 : (est > 1.0 ? 1.0 : est);
  }

  void EstimateMany(const std::vector<core::Itemset>& ts,
                    std::vector<double>* answers) const override {
    if (columns_.num_rows() == 0) {
      answers->assign(ts.size(), 0.0);
      return;
    }
    answers->resize(ts.size());
    double* out = answers->data();
    util::ThreadPool::Default().ParallelFor(
        0, ts.size(), /*grain=*/16,
        [this, &ts, out](std::size_t first, std::size_t last) {
          EstimateRange(ts, first, last, out);
        });
  }

 private:
  // Serial kernel over queries [first, last): chunk-local scratch only.
  // This walks sibling runs like ColumnStore::CountRange but diverges
  // deliberately: CountRange needs only counts, so isolated queries can
  // take the fused no-accumulator AndCountMany path; here the hit ROWS
  // must be materialized to gather coefficients, so the prefix is always
  // built and there is no fused fallback to dispatch between.
  void EstimateRange(const std::vector<core::Itemset>& ts, std::size_t first,
                     std::size_t last, double* answers) const {
    const std::size_t s = columns_.num_rows();
    util::BitVector prefix;  // AND of all but the last attr of prefix_attrs
    util::BitVector hits;
    std::vector<std::size_t> prefix_attrs;
    std::vector<std::size_t> attrs;
    std::vector<std::size_t> next_attrs;
    if (first < last) attrs = ts[first].Attributes();
    for (std::size_t q = first; q < last; ++q) {
      if (q + 1 < last) next_attrs = ts[q + 1].Attributes();
      double acc = 0.0;
      if (attrs.empty()) {
        for (std::size_t i = 0; i < s; ++i) acc += coefficients_[i];
      } else if (attrs.size() == 1) {
        for (std::size_t i : columns_.Column(attrs[0]).SetBits()) {
          acc += coefficients_[i];
        }
      } else {
        if (!core::SharesAprioriPrefix(prefix_attrs, attrs)) {
          prefix = columns_.Column(attrs[0]);
          for (std::size_t i = 1; i + 1 < attrs.size(); ++i) {
            prefix &= columns_.Column(attrs[i]);
          }
          prefix_attrs = attrs;
        }
        hits = prefix;
        hits &= columns_.Column(attrs.back());
        for (std::size_t i : hits.SetBits()) acc += coefficients_[i];
      }
      const double est = acc / static_cast<double>(s);
      answers[q] = est < 0.0 ? 0.0 : (est > 1.0 ? 1.0 : est);
      attrs.swap(next_attrs);
    }
  }

  core::ColumnStore columns_;
  std::vector<double> coefficients_;  // mean_w / w(r_i), ascending row order
};

}  // namespace

ImportanceSampleSketch::ImportanceSampleSketch()
    : weight_([](const util::BitVector& row) {
        return static_cast<double>(row.Count() + 1);
      }) {}

ImportanceSampleSketch::ImportanceSampleSketch(WeightFn weight)
    : weight_(std::move(weight)) {
  IFSKETCH_CHECK(weight_ != nullptr);
}

std::size_t ImportanceSampleSketch::SampleCount(
    const core::SketchParams& params, std::size_t d) {
  return SubsampleSketch::SampleCount(params, d);
}

util::BitVector ImportanceSampleSketch::Build(
    const core::Database& db, const core::SketchParams& params,
    util::Rng& rng) const {
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  const std::size_t n = db.num_rows();
  // Cumulative weights for inverse-CDF sampling.
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weight_(db.Row(i));
    IFSKETCH_CHECK_GT(w, 0.0);
    total += w;
    cumulative[i] = total;
  }
  const double mean_weight = total / static_cast<double>(n);

  const std::size_t s = SampleCount(params, db.num_columns());
  util::BitWriter writer;
  // mean_w as a fixed-point value scaled by 2^20 (enough for d <= ~2^40).
  writer.WriteUint(
      static_cast<std::uint64_t>(std::llround(mean_weight * (1 << 20))),
      kWeightBits);
  for (std::size_t i = 0; i < s; ++i) {
    const double u = rng.UniformDouble() * total;
    // Binary search the cumulative array.
    std::size_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    writer.WriteBits(db.Row(lo));
  }
  return writer.Finish();
}

std::unique_ptr<core::FrequencyEstimator>
ImportanceSampleSketch::LoadEstimator(const util::BitVector& summary,
                                      const core::SketchParams& /*params*/,
                                      std::size_t d,
                                      std::size_t /*n*/) const {
  util::BitReader reader(summary);
  const double mean_weight =
      static_cast<double>(reader.ReadUint(kWeightBits)) /
      static_cast<double>(1 << 20);
  IFSKETCH_CHECK_EQ(reader.Remaining() % d, 0u);
  const std::size_t s = reader.Remaining() / d;
  std::vector<util::BitVector> rows;
  rows.reserve(s);
  for (std::size_t i = 0; i < s; ++i) rows.push_back(reader.ReadBits(d));
  return std::make_unique<HtEstimator>(
      core::Database::FromRows(std::move(rows)), mean_weight, weight_);
}

std::size_t ImportanceSampleSketch::PredictedSizeBits(
    std::size_t /*n*/, std::size_t d,
    const core::SketchParams& params) const {
  return kWeightBits + SampleCount(params, d) * d;
}

}  // namespace ifsketch::sketch
