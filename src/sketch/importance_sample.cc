#include "sketch/importance_sample.h"

#include <cmath>

#include "core/column_store.h"
#include "sketch/subsample.h"
#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {
namespace {

/// Horvitz-Thompson estimator over weighted samples: with q_i
/// proportional to w(r_i), E[(1/s) sum I{T in r_i} * mean_w / w(r_i)]
/// = f_T, where mean_w = W/n is carried in the summary.
///
/// Batched queries amortize two pieces of work over the batch: the
/// per-row coefficients mean_w / w(r_i) (one weight evaluation per row
/// instead of one per hit) and a ColumnStore transpose that finds each
/// query's hit rows by ANDing columns. Hits are accumulated in ascending
/// row order with the same per-row terms, so the floating-point sum -- and
/// therefore the answer -- is bit-identical to the scalar loop.
class HtEstimator : public core::FrequencyEstimator {
 public:
  HtEstimator(core::Database sample, double mean_weight,
              ImportanceSampleSketch::WeightFn weight)
      : sample_(std::move(sample)),
        mean_weight_(mean_weight),
        weight_(std::move(weight)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    if (sample_.num_rows() == 0) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < sample_.num_rows(); ++i) {
      if (t.ContainedIn(sample_.Row(i))) {
        acc += mean_weight_ / weight_(sample_.Row(i));
      }
    }
    const double est = acc / static_cast<double>(sample_.num_rows());
    return est < 0.0 ? 0.0 : (est > 1.0 ? 1.0 : est);
  }

  void EstimateMany(const std::vector<core::Itemset>& ts,
                    std::vector<double>* answers) const override {
    const std::size_t s = sample_.num_rows();
    if (s == 0) {
      answers->assign(ts.size(), 0.0);
      return;
    }
    if (columns_ == nullptr) {
      columns_ = std::make_unique<core::ColumnStore>(sample_);
      coefficients_.resize(s);
      for (std::size_t i = 0; i < s; ++i) {
        coefficients_[i] = mean_weight_ / weight_(sample_.Row(i));
      }
    }
    answers->resize(ts.size());
    util::BitVector hits;
    for (std::size_t q = 0; q < ts.size(); ++q) {
      const auto attrs = ts[q].Attributes();
      double acc = 0.0;
      if (attrs.empty()) {
        for (std::size_t i = 0; i < s; ++i) acc += coefficients_[i];
      } else {
        hits = columns_->Column(attrs[0]);
        for (std::size_t i = 1; i < attrs.size(); ++i) {
          hits &= columns_->Column(attrs[i]);
        }
        for (std::size_t i : hits.SetBits()) acc += coefficients_[i];
      }
      const double est = acc / static_cast<double>(s);
      (*answers)[q] = est < 0.0 ? 0.0 : (est > 1.0 ? 1.0 : est);
    }
  }

 private:
  core::Database sample_;
  double mean_weight_;
  ImportanceSampleSketch::WeightFn weight_;
  mutable std::unique_ptr<core::ColumnStore> columns_;   // built on demand
  mutable std::vector<double> coefficients_;  // mean_w / w(r_i), same order
};

}  // namespace

ImportanceSampleSketch::ImportanceSampleSketch()
    : weight_([](const util::BitVector& row) {
        return static_cast<double>(row.Count() + 1);
      }) {}

ImportanceSampleSketch::ImportanceSampleSketch(WeightFn weight)
    : weight_(std::move(weight)) {
  IFSKETCH_CHECK(weight_ != nullptr);
}

std::size_t ImportanceSampleSketch::SampleCount(
    const core::SketchParams& params, std::size_t d) {
  return SubsampleSketch::SampleCount(params, d);
}

util::BitVector ImportanceSampleSketch::Build(
    const core::Database& db, const core::SketchParams& params,
    util::Rng& rng) const {
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  const std::size_t n = db.num_rows();
  // Cumulative weights for inverse-CDF sampling.
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weight_(db.Row(i));
    IFSKETCH_CHECK_GT(w, 0.0);
    total += w;
    cumulative[i] = total;
  }
  const double mean_weight = total / static_cast<double>(n);

  const std::size_t s = SampleCount(params, db.num_columns());
  util::BitWriter writer;
  // mean_w as a fixed-point value scaled by 2^20 (enough for d <= ~2^40).
  writer.WriteUint(
      static_cast<std::uint64_t>(std::llround(mean_weight * (1 << 20))),
      kWeightBits);
  for (std::size_t i = 0; i < s; ++i) {
    const double u = rng.UniformDouble() * total;
    // Binary search the cumulative array.
    std::size_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    writer.WriteBits(db.Row(lo));
  }
  return writer.Finish();
}

std::unique_ptr<core::FrequencyEstimator>
ImportanceSampleSketch::LoadEstimator(const util::BitVector& summary,
                                      const core::SketchParams& /*params*/,
                                      std::size_t d,
                                      std::size_t /*n*/) const {
  util::BitReader reader(summary);
  const double mean_weight =
      static_cast<double>(reader.ReadUint(kWeightBits)) /
      static_cast<double>(1 << 20);
  IFSKETCH_CHECK_EQ(reader.Remaining() % d, 0u);
  const std::size_t s = reader.Remaining() / d;
  std::vector<util::BitVector> rows;
  rows.reserve(s);
  for (std::size_t i = 0; i < s; ++i) rows.push_back(reader.ReadBits(d));
  return std::make_unique<HtEstimator>(
      core::Database::FromRows(std::move(rows)), mean_weight, weight_);
}

std::size_t ImportanceSampleSketch::PredictedSizeBits(
    std::size_t /*n*/, std::size_t d,
    const core::SketchParams& params) const {
  return kWeightBits + SampleCount(params, d) * d;
}

}  // namespace ifsketch::sketch
