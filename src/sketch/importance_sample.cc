#include "sketch/importance_sample.h"

#include <cmath>

#include "sketch/subsample.h"
#include "util/bitio.h"
#include "util/check.h"

namespace ifsketch::sketch {
namespace {

/// Horvitz-Thompson estimator over weighted samples: with q_i
/// proportional to w(r_i), E[(1/s) sum I{T in r_i} * mean_w / w(r_i)]
/// = f_T, where mean_w = W/n is carried in the summary.
class HtEstimator : public core::FrequencyEstimator {
 public:
  HtEstimator(core::Database sample, double mean_weight,
              ImportanceSampleSketch::WeightFn weight)
      : sample_(std::move(sample)),
        mean_weight_(mean_weight),
        weight_(std::move(weight)) {}

  double EstimateFrequency(const core::Itemset& t) const override {
    if (sample_.num_rows() == 0) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < sample_.num_rows(); ++i) {
      if (t.ContainedIn(sample_.Row(i))) {
        acc += mean_weight_ / weight_(sample_.Row(i));
      }
    }
    const double est = acc / static_cast<double>(sample_.num_rows());
    return est < 0.0 ? 0.0 : (est > 1.0 ? 1.0 : est);
  }

 private:
  core::Database sample_;
  double mean_weight_;
  ImportanceSampleSketch::WeightFn weight_;
};

}  // namespace

ImportanceSampleSketch::ImportanceSampleSketch()
    : weight_([](const util::BitVector& row) {
        return static_cast<double>(row.Count() + 1);
      }) {}

ImportanceSampleSketch::ImportanceSampleSketch(WeightFn weight)
    : weight_(std::move(weight)) {
  IFSKETCH_CHECK(weight_ != nullptr);
}

std::size_t ImportanceSampleSketch::SampleCount(
    const core::SketchParams& params, std::size_t d) {
  return SubsampleSketch::SampleCount(params, d);
}

util::BitVector ImportanceSampleSketch::Build(
    const core::Database& db, const core::SketchParams& params,
    util::Rng& rng) const {
  IFSKETCH_CHECK_GT(db.num_rows(), 0u);
  const std::size_t n = db.num_rows();
  // Cumulative weights for inverse-CDF sampling.
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weight_(db.Row(i));
    IFSKETCH_CHECK_GT(w, 0.0);
    total += w;
    cumulative[i] = total;
  }
  const double mean_weight = total / static_cast<double>(n);

  const std::size_t s = SampleCount(params, db.num_columns());
  util::BitWriter writer;
  // mean_w as a fixed-point value scaled by 2^20 (enough for d <= ~2^40).
  writer.WriteUint(
      static_cast<std::uint64_t>(std::llround(mean_weight * (1 << 20))),
      kWeightBits);
  for (std::size_t i = 0; i < s; ++i) {
    const double u = rng.UniformDouble() * total;
    // Binary search the cumulative array.
    std::size_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    writer.WriteBits(db.Row(lo));
  }
  return writer.Finish();
}

std::unique_ptr<core::FrequencyEstimator>
ImportanceSampleSketch::LoadEstimator(const util::BitVector& summary,
                                      const core::SketchParams& /*params*/,
                                      std::size_t d,
                                      std::size_t /*n*/) const {
  util::BitReader reader(summary);
  const double mean_weight =
      static_cast<double>(reader.ReadUint(kWeightBits)) /
      static_cast<double>(1 << 20);
  IFSKETCH_CHECK_EQ(reader.Remaining() % d, 0u);
  const std::size_t s = reader.Remaining() / d;
  std::vector<util::BitVector> rows;
  rows.reserve(s);
  for (std::size_t i = 0; i < s; ++i) rows.push_back(reader.ReadBits(d));
  return std::make_unique<HtEstimator>(
      core::Database::FromRows(std::move(rows)), mean_weight, weight_);
}

std::size_t ImportanceSampleSketch::PredictedSizeBits(
    std::size_t /*n*/, std::size_t d,
    const core::SketchParams& params) const {
  return kWeightBits + SampleCount(params, d) * d;
}

}  // namespace ifsketch::sketch
