// Misra-Gries frequent-items summaries (the contrast class of §1.2).
//
// The paper emphasizes that itemset frequency sketching is fundamentally
// different from the "much simpler" frequent items / heavy hitters
// problem, where deterministic O(1/eps)-counter summaries exist and
// uniform sampling is NOT optimal. This module implements the classic
// Misra-Gries algorithm over single attributes so the contrast can be
// measured: e13 compares its O(eps^-1 (log d + log n)) bits against the
// Omega(d/eps) itemset bound.
#ifndef IFSKETCH_STREAM_MISRA_GRIES_H_
#define IFSKETCH_STREAM_MISRA_GRIES_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/database.h"
#include "util/bitio.h"

namespace ifsketch::stream {

/// Misra-Gries summary over a stream of items from [d].
///
/// With c counters, after observing N items every item's estimate
/// satisfies  true_count - N/(c+1) <= Estimate(x) <= true_count:
/// a deterministic, worst-case guarantee with no sampling.
class MisraGries {
 public:
  /// `counters` = the number of tracked items (c = ceil(1/eps) gives
  /// additive error eps*N).
  explicit MisraGries(std::size_t counters);

  /// Observes one item occurrence.
  void Observe(std::size_t item);

  /// Observes every 1-attribute of a database row (rows as item streams).
  void ObserveRow(const util::BitVector& row);

  /// Lower-bound estimate of the item's occurrence count.
  std::uint64_t Estimate(std::size_t item) const;

  /// Total items observed N.
  std::uint64_t items_seen() const { return items_seen_; }

  /// Worst-case undercount: N/(counters+1).
  std::uint64_t MaxError() const {
    return items_seen_ / (counters_ + 1);
  }

  /// Items whose estimated count is >= threshold (candidates include all
  /// true heavy hitters at threshold + MaxError()).
  std::vector<std::size_t> HeavyHitters(std::uint64_t threshold) const;

  /// Summary size in bits: per tracked item an id (log2 d ~ 64 here,
  /// counted as the bits actually stored) plus a 64-bit counter.
  std::size_t SizeBits() const { return counters_ * (64 + 64); }

  /// Appends the complete sketch state to `w` for checkpoint/recovery.
  void SaveState(util::BitWriter* w) const;

  /// Restores a SaveState snapshot from `r`; false when the encoded
  /// state is malformed (truncated, too many entries, unsorted items, or
  /// impossible counts) -- the sketch is left unchanged in that case.
  bool RestoreState(util::BitReader* r);

 private:
  std::size_t counters_;
  std::uint64_t items_seen_ = 0;
  std::map<std::size_t, std::uint64_t> counts_;
};

}  // namespace ifsketch::stream

#endif  // IFSKETCH_STREAM_MISRA_GRIES_H_
