// Count-Min sketch for item counts (§1.2 contrast class, randomized).
//
// The randomized counterpart to Misra-Gries: r x w counters with
// pairwise-independent hashing; estimates never undercount and
// overcount by at most e*N/w with probability 1 - e^-r per query. Like
// Misra-Gries it pays no factor of d -- exactly the structure the paper
// shows cannot exist for itemset frequencies.
#ifndef IFSKETCH_STREAM_COUNT_MIN_H_
#define IFSKETCH_STREAM_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ifsketch::stream {

/// Count-Min sketch over items from an arbitrary integer universe.
class CountMin {
 public:
  /// `width` counters per row, `depth` independent rows; hash parameters
  /// drawn from `rng`.
  CountMin(std::size_t width, std::size_t depth, util::Rng& rng);

  /// Adds `amount` occurrences of `item`.
  void Observe(std::uint64_t item, std::uint64_t amount = 1);

  /// Upper-bound estimate of the item's count (never an undercount).
  std::uint64_t Estimate(std::uint64_t item) const;

  std::uint64_t items_seen() const { return items_seen_; }

  /// Summary size in bits (64 per counter plus the hash seeds).
  std::size_t SizeBits() const {
    return width_ * depth_ * 64 + depth_ * 2 * 64;
  }

 private:
  std::size_t Bucket(std::size_t row, std::uint64_t item) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t items_seen_ = 0;
  std::vector<std::uint64_t> a_;  // per-row hash multipliers (odd)
  std::vector<std::uint64_t> b_;  // per-row hash offsets
  std::vector<std::uint64_t> counters_;  // row-major depth x width
};

}  // namespace ifsketch::stream

#endif  // IFSKETCH_STREAM_COUNT_MIN_H_
