#include "stream/count_min.h"

#include <algorithm>

#include "util/check.h"

namespace ifsketch::stream {

CountMin::CountMin(std::size_t width, std::size_t depth, util::Rng& rng)
    : width_(width), depth_(depth), counters_(width * depth, 0) {
  IFSKETCH_CHECK_GE(width, 1u);
  IFSKETCH_CHECK_GE(depth, 1u);
  a_.reserve(depth);
  b_.reserve(depth);
  for (std::size_t r = 0; r < depth; ++r) {
    a_.push_back(rng.Next() | 1u);  // odd multiplier
    b_.push_back(rng.Next());
  }
}

std::size_t CountMin::Bucket(std::size_t row, std::uint64_t item) const {
  // Multiply-shift hashing; take the high bits for the bucket.
  const std::uint64_t h = a_[row] * item + b_[row];
  return static_cast<std::size_t>((h >> 33) % width_);
}

void CountMin::Observe(std::uint64_t item, std::uint64_t amount) {
  items_seen_ += amount;
  for (std::size_t r = 0; r < depth_; ++r) {
    counters_[r * width_ + Bucket(r, item)] += amount;
  }
}

std::uint64_t CountMin::Estimate(std::uint64_t item) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t r = 0; r < depth_; ++r) {
    best = std::min(best, counters_[r * width_ + Bucket(r, item)]);
  }
  return best;
}

}  // namespace ifsketch::stream
