#include "stream/misra_gries.h"

#include "util/check.h"

namespace ifsketch::stream {

MisraGries::MisraGries(std::size_t counters) : counters_(counters) {
  IFSKETCH_CHECK_GE(counters, 1u);
}

void MisraGries::Observe(std::size_t item) {
  ++items_seen_;
  auto it = counts_.find(item);
  if (it != counts_.end()) {
    ++it->second;
    return;
  }
  if (counts_.size() < counters_) {
    counts_[item] = 1;
    return;
  }
  // Decrement-all step; erase counters that reach zero.
  for (auto iter = counts_.begin(); iter != counts_.end();) {
    if (--iter->second == 0) {
      iter = counts_.erase(iter);
    } else {
      ++iter;
    }
  }
}

void MisraGries::ObserveRow(const util::BitVector& row) {
  for (std::size_t item : row.SetBits()) Observe(item);
}

std::uint64_t MisraGries::Estimate(std::size_t item) const {
  const auto it = counts_.find(item);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::size_t> MisraGries::HeavyHitters(
    std::uint64_t threshold) const {
  std::vector<std::size_t> out;
  for (const auto& [item, count] : counts_) {
    if (count >= threshold) out.push_back(item);
  }
  return out;
}

}  // namespace ifsketch::stream
