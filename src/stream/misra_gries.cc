#include "stream/misra_gries.h"

#include "util/check.h"

namespace ifsketch::stream {

MisraGries::MisraGries(std::size_t counters) : counters_(counters) {
  IFSKETCH_CHECK_GE(counters, 1u);
}

void MisraGries::Observe(std::size_t item) {
  ++items_seen_;
  auto it = counts_.find(item);
  if (it != counts_.end()) {
    ++it->second;
    return;
  }
  if (counts_.size() < counters_) {
    counts_[item] = 1;
    return;
  }
  // Decrement-all step; erase counters that reach zero.
  for (auto iter = counts_.begin(); iter != counts_.end();) {
    if (--iter->second == 0) {
      iter = counts_.erase(iter);
    } else {
      ++iter;
    }
  }
}

void MisraGries::ObserveRow(const util::BitVector& row) {
  for (std::size_t item : row.SetBits()) Observe(item);
}

std::uint64_t MisraGries::Estimate(std::size_t item) const {
  const auto it = counts_.find(item);
  return it == counts_.end() ? 0 : it->second;
}

void MisraGries::SaveState(util::BitWriter* w) const {
  w->WriteUint(items_seen_, 64);
  w->WriteUint(counts_.size(), 64);
  for (const auto& [item, count] : counts_) {  // map order: ascending
    w->WriteUint(item, 64);
    w->WriteUint(count, 64);
  }
}

bool MisraGries::RestoreState(util::BitReader* r) {
  if (r->Remaining() < 128) return false;
  const std::uint64_t items_seen = r->ReadUint(64);
  const std::uint64_t entries = r->ReadUint(64);
  if (entries > counters_) return false;
  if (r->Remaining() < entries * 128) return false;
  std::map<std::size_t, std::uint64_t> counts;
  std::uint64_t prev_item = 0;
  for (std::uint64_t i = 0; i < entries; ++i) {
    const std::uint64_t item = r->ReadUint(64);
    const std::uint64_t count = r->ReadUint(64);
    if (i > 0 && item <= prev_item) return false;
    if (count == 0 || count > items_seen) return false;
    prev_item = item;
    counts.emplace_hint(counts.end(), static_cast<std::size_t>(item), count);
  }
  items_seen_ = items_seen;
  counts_ = std::move(counts);
  return true;
}

std::vector<std::size_t> MisraGries::HeavyHitters(
    std::uint64_t threshold) const {
  std::vector<std::size_t> out;
  for (const auto& [item, count] : counts_) {
    if (count >= threshold) out.push_back(item);
  }
  return out;
}

}  // namespace ifsketch::stream
