// Segmented write-ahead log + checkpointing for streaming ingest (PR 10).
//
// The durability contract extends PR 6's determinism contract across
// process death: a server killed at ANY byte and restarted on the same
// WAL directory answers estimate_many / are_frequent / mine exactly as
// an unbroken run over the same row prefix. Two pieces make that hold:
//
//   - Every transaction row is appended to the log BEFORE the builder
//     observes it, as a CRC32C-framed, length-prefixed record inside a
//     segment file ("wal-<16-hex first_row>.seg": "IFWL" header naming
//     the row width and the absolute index of its first record).
//   - At every snapshot publication the COMPLETE builder + Rng state is
//     checkpointed ("checkpoint.ifwc", written atomically via
//     util::WriteFileAtomic) and the log rotates to a fresh segment, so
//     recovery restores the checkpoint and replays only the tail past it
//     -- never the whole stream. Snapshots alone would not be enough:
//     a published summary cannot reseed the reservoir bookkeeping or the
//     Rng, so recovery replaying on top of it would diverge from the
//     unbroken run. The checkpoint can.
//
// Recovery (inside Wal::Open) restores the newest checkpoint, replays
// segment records past it in order, truncates a torn tail at the first
// bad CRC / short frame (a crash mid-append), then re-checkpoints and
// starts a pristine segment. Corruption anywhere EXCEPT the tail of the
// last segment is refused, never silently served. The recovered row
// count is always a prefix of the rows pushed before the crash.
//
// Sync policies bound what a POWER loss can lose (a plain kill -9 loses
// only rows still in the user-space append buffer, which is flushed at
// every checkpoint): every_record fsyncs per append, every_n fsyncs per
// n appends, on_snapshot fsyncs only at checkpoint time -- then only the
// checkpoint barrier is durable, the cheapest tax (bench/micro_ingest
// holds it within 1.2x of no-WAL ingest).
//
// Crash injection: thread a util::MakeFaultyFileSinkFactory through
// WalOptions::sink_factory and every byte the WAL writes -- segments,
// checkpoint temp files -- draws from one die-at-byte-N budget; the
// recovery test matrix (tests/ingest_wal_test.cc) crashes a run at every
// interesting byte without forking processes.

#ifndef IFSKETCH_INGEST_WAL_H_
#define IFSKETCH_INGEST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sketch.h"
#include "obs/metrics.h"
#include "sketch/streaming.h"
#include "util/bitvector.h"
#include "util/durable.h"
#include "util/random.h"

namespace ifsketch::ingest {

/// When appended records are fsynced to stable storage.
enum class WalSyncPolicy : std::uint8_t {
  kEveryRecord,  ///< fdatasync after every append
  kEveryN,       ///< fdatasync after every WalOptions::sync_every appends
  kOnSnapshot,   ///< fdatasync only at the checkpoint barrier
};

/// "every_record" / "every_n" / "on_snapshot".
const char* WalSyncPolicyName(WalSyncPolicy policy);
bool ParseWalSyncPolicy(const std::string& text, WalSyncPolicy* policy);

struct WalOptions {
  /// Directory holding segments + checkpoint (created if missing).
  std::string dir;
  WalSyncPolicy sync = WalSyncPolicy::kOnSnapshot;
  /// Appends per fsync under kEveryN (must be >= 1).
  std::uint64_t sync_every = 64;
  /// Metrics destination; nullptr = the process-wide default registry.
  obs::MetricsRegistry* registry = nullptr;
  /// Test seam: every file the WAL writes is opened through this factory
  /// (empty = util::PosixFileSink). See util::MakeFaultyFileSinkFactory.
  util::FileSinkFactory sink_factory;
};

/// What Wal::Open recovered from an existing directory.
struct WalRecovery {
  std::uint64_t rows = 0;             ///< total rows restored (prefix length)
  std::uint64_t checkpoint_rows = 0;  ///< rows covered by the checkpoint
  std::uint64_t replayed_rows = 0;    ///< rows replayed from segment tails
  std::uint64_t truncated_bytes = 0;  ///< torn tail bytes dropped
};

class Wal {
 public:
  /// Opens the log in options.dir for a width-d row stream produced by
  /// `algorithm` under `params` with `seed` (the identity the checkpoint
  /// is stamped with; a directory written by a different identity is
  /// refused). Recovery runs first: the newest checkpoint is restored
  /// into *builder / *rng, the segment tail past it is replayed through
  /// builder->Observe (torn tail truncated at the first bad CRC), a
  /// fresh checkpoint + segment are persisted, and stale segments are
  /// pruned. On success *recovery (optional) says what was restored; on
  /// any non-recoverable corruption returns nullptr with a
  /// "path: byte N: reason" detail in *error.
  static std::unique_ptr<Wal> Open(const WalOptions& options,
                                   const std::string& algorithm,
                                   const core::SketchParams& params,
                                   std::size_t d, std::uint64_t seed,
                                   sketch::StreamingBuilder* builder,
                                   util::Rng* rng,
                                   WalRecovery* recovery = nullptr,
                                   std::string* error = nullptr);

  ~Wal();

  /// Logs one row. MUST be called before the builder observes the row --
  /// write-ahead is what makes the recovered prefix contain every row
  /// the builder ever saw. False after any I/O failure (the log latches
  /// failed; the caller decides between availability and durability).
  bool Append(const util::BitVector& row);

  /// The snapshot barrier at `rows` total observed rows: flushes and
  /// fsyncs the active segment, atomically persists the builder + rng
  /// checkpoint, rotates to a fresh segment wal-<rows>.seg and prunes
  /// the superseded one. After a successful return, recovery is
  /// guaranteed to restore at least `rows` rows.
  bool Checkpoint(const sketch::StreamingBuilder& builder,
                  const util::Rng& rng, std::uint64_t rows);

  /// False once any append/checkpoint I/O failed; error() says why.
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  Wal(const WalOptions& options, const std::string& algorithm,
      const core::SketchParams& params, std::size_t d, std::uint64_t seed);

  bool Fail(const std::string& detail);
  bool FlushBuffer();
  bool SyncSegment();
  bool OpenSegment(std::uint64_t first_row);
  bool WriteCheckpoint(const sketch::StreamingBuilder& builder,
                       const util::Rng& rng, std::uint64_t rows);

  WalOptions options_;
  std::string algorithm_;
  core::SketchParams params_;
  std::size_t d_;
  std::uint64_t seed_;
  std::size_t record_payload_bytes_;

  obs::Counter* records_metric_;
  obs::Histogram* fsync_metric_;
  obs::Gauge* segment_bytes_metric_;
  obs::Counter* replayed_metric_;

  std::unique_ptr<util::FileSink> segment_;
  std::string segment_path_;
  std::string buffer_;  // user-space append buffer (lost on kill -9)
  std::uint64_t segment_bytes_ = 0;
  std::uint64_t records_since_sync_ = 0;
  std::string error_;
};

/// Read-only structural verification of a WAL directory for
/// ifsketch_fsck: checkpoint magic/CRC/decodability (including that the
/// named algorithm exists and accepts the saved builder state), segment
/// chaining, and every record frame. A torn tail in the LAST segment is
/// recoverable by design and only noted; anything else is a failure.
struct WalFsckReport {
  bool ok = true;
  std::vector<std::string> failures;  ///< "path: byte N: reason"
  std::vector<std::string> notes;     ///< recoverable observations
};
WalFsckReport VerifyWalDir(const std::string& dir);

}  // namespace ifsketch::ingest

#endif  // IFSKETCH_INGEST_WAL_H_
