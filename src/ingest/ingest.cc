#include "ingest/ingest.h"

#include <chrono>
#include <utility>

#include "sketch/builtin_algorithms.h"
#include "sketch/sketch_file.h"
#include "util/check.h"

namespace ifsketch::ingest {
namespace {

obs::MetricsRegistry& ResolveRegistry(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::MetricsRegistry::Default();
}

}  // namespace

std::unique_ptr<IngestService> IngestService::Create(
    const IngestOptions& options, PublishFn publish, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (options.d == 0) return fail("ingest: d must be positive");
  if (options.rows_per_snapshot == 0) {
    return fail("ingest: rows_per_snapshot must be positive");
  }
  if (publish == nullptr) return fail("ingest: publish callback required");
  auto algorithm = sketch::BuiltinRegistry().Create(options.algorithm);
  if (algorithm == nullptr) {
    return fail("ingest: unknown algorithm " + options.algorithm);
  }
  const auto* streaming =
      dynamic_cast<const sketch::StreamingSketch*>(algorithm.get());
  if (streaming == nullptr) {
    return fail("ingest: " + options.algorithm +
                " does not support streaming construction");
  }
  return std::unique_ptr<IngestService>(new IngestService(
      options, std::move(publish), std::move(algorithm), streaming));
}

IngestService::IngestService(IngestOptions options, PublishFn publish,
                             std::unique_ptr<core::SketchAlgorithm> algorithm,
                             const sketch::StreamingSketch* streaming)
    : options_(std::move(options)),
      publish_(std::move(publish)),
      rows_metric_(
          ResolveRegistry(options_.registry).GetCounter("ingest_rows_total")),
      snapshots_metric_(ResolveRegistry(options_.registry)
                            .GetCounter("ingest_snapshots_total")),
      publish_metric_(ResolveRegistry(options_.registry)
                          .GetHistogram("ingest_publish_ns")),
      occupancy_metric_(ResolveRegistry(options_.registry)
                            .GetGauge("ingest_ring_occupancy")),
      algorithm_(std::move(algorithm)),
      rng_(options_.seed),
      builder_(streaming->NewBuilder(options_.d, options_.params, rng_)),
      ring_(options_.ring_capacity) {
  thread_ = std::thread([this] { Run(); });
}

IngestService::~IngestService() { Finish(); }

void IngestService::Push(util::BitVector row) {
  IFSKETCH_CHECK(!finished_);
  IFSKETCH_CHECK_EQ(row.size(), options_.d);
  while (!ring_.TryPush(std::move(row))) std::this_thread::yield();
}

void IngestService::Finish() {
  if (finished_) return;
  finished_ = true;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

void IngestService::Run() {
  util::BitVector row;
  std::uint64_t rows = 0;
  for (;;) {
    if (!ring_.TryPop(&row)) {
      // Re-check the ring after seeing stop: the producer sets stop only
      // after its last Push, so stop + empty means fully drained.
      if (stop_.load(std::memory_order_acquire) && ring_.Empty()) break;
      std::this_thread::yield();
      continue;
    }
    builder_->Observe(row);
    ++rows;
    rows_ingested_.store(rows, std::memory_order_release);
    rows_metric_->Add();
    occupancy_metric_->Set(static_cast<std::int64_t>(ring_.SizeApprox()));
    if (rows % options_.rows_per_snapshot == 0) PublishSnapshot(rows);
  }
  if (rows > last_published_rows_) PublishSnapshot(rows);
}

void IngestService::PublishSnapshot(std::uint64_t rows) {
  const auto publish_start = std::chrono::steady_clock::now();
  sketch::SketchFile file;
  file.algorithm = options_.algorithm;
  file.params = options_.params;
  file.n = rows;
  file.d = options_.d;
  file.summary = builder_->Summary();
  auto engine = Engine::FromFile(std::move(file));
  // The builder produced the summary through the registered algorithm's
  // own layout, so FromFile's size validation cannot fail here.
  IFSKETCH_CHECK(engine.has_value());
  last_published_rows_ = rows;
  auto shared = std::make_shared<const Engine>(std::move(*engine));
  snapshots_published_.fetch_add(1, std::memory_order_acq_rel);
  publish_(std::move(shared), rows);
  snapshots_metric_->Add();
  publish_metric_->Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - publish_start)
          .count()));
}

}  // namespace ifsketch::ingest
