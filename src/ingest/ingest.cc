#include "ingest/ingest.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "sketch/builtin_algorithms.h"
#include "sketch/sketch_file.h"
#include "util/check.h"

namespace ifsketch::ingest {
namespace {

obs::MetricsRegistry& ResolveRegistry(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::MetricsRegistry::Default();
}

}  // namespace

std::unique_ptr<IngestService> IngestService::Create(
    const IngestOptions& options, PublishFn publish, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (options.d == 0) return fail("ingest: d must be positive");
  if (options.rows_per_snapshot == 0) {
    return fail("ingest: rows_per_snapshot must be positive");
  }
  if (publish == nullptr) return fail("ingest: publish callback required");
  auto algorithm = sketch::BuiltinRegistry().Create(options.algorithm);
  if (algorithm == nullptr) {
    return fail("ingest: unknown algorithm " + options.algorithm);
  }
  const auto* streaming =
      dynamic_cast<const sketch::StreamingSketch*>(algorithm.get());
  if (streaming == nullptr) {
    return fail("ingest: " + options.algorithm +
                " does not support streaming construction");
  }
  if (!options.wal_dir.empty() && options.wal_sync == WalSyncPolicy::kEveryN &&
      options.wal_sync_every == 0) {
    return fail("ingest: wal_sync_every must be positive");
  }
  auto service = std::unique_ptr<IngestService>(new IngestService(
      options, std::move(publish), std::move(algorithm), streaming));
  if (!options.wal_dir.empty()) {
    // Recovery happens here, before the ingest thread exists, so the
    // replay owns the builder and the Rng without synchronization.
    WalOptions wal_options;
    wal_options.dir = options.wal_dir;
    wal_options.sync = options.wal_sync;
    wal_options.sync_every = options.wal_sync_every;
    wal_options.registry = options.registry;
    wal_options.sink_factory = options.wal_sink_factory;
    std::string wal_error;
    service->wal_ = Wal::Open(wal_options, options.algorithm, options.params,
                              options.d, options.seed,
                              service->builder_.get(), &service->rng_,
                              &service->recovery_, &wal_error);
    if (service->wal_ == nullptr) return fail("ingest: " + wal_error);
    service->rows_ingested_.store(service->recovery_.rows,
                                  std::memory_order_release);
  }
  service->Start();
  return service;
}

IngestService::IngestService(IngestOptions options, PublishFn publish,
                             std::unique_ptr<core::SketchAlgorithm> algorithm,
                             const sketch::StreamingSketch* streaming)
    : options_(std::move(options)),
      publish_(std::move(publish)),
      rows_metric_(
          ResolveRegistry(options_.registry).GetCounter("ingest_rows_total")),
      snapshots_metric_(ResolveRegistry(options_.registry)
                            .GetCounter("ingest_snapshots_total")),
      publish_metric_(ResolveRegistry(options_.registry)
                          .GetHistogram("ingest_publish_ns")),
      occupancy_metric_(ResolveRegistry(options_.registry)
                            .GetGauge("ingest_ring_occupancy")),
      algorithm_(std::move(algorithm)),
      rng_(options_.seed),
      builder_(streaming->NewBuilder(options_.d, options_.params, rng_)),
      ring_(options_.ring_capacity) {}

void IngestService::Start() {
  thread_ = std::thread([this] { Run(); });
}

IngestService::~IngestService() { Finish(); }

void IngestService::Push(util::BitVector row) {
  IFSKETCH_CHECK(!finished_);
  IFSKETCH_CHECK_EQ(row.size(), options_.d);
  while (!ring_.TryPush(std::move(row))) std::this_thread::yield();
}

void IngestService::Finish() {
  if (finished_) return;
  finished_ = true;
  stop_.store(true, std::memory_order_release);
  // Create may fail after construction but before Start (WAL recovery
  // refused the directory); the thread never ran then.
  if (thread_.joinable()) thread_.join();
}

void IngestService::Run() {
  // Recovery restored `recovery_.rows` rows into the builder before this
  // thread started. Publish them immediately -- consumers should see the
  // recovered state without waiting for new rows -- and keep the
  // absolute row count, so the snapshot cadence (every
  // rows_per_snapshot ABSOLUTE rows) matches an unbroken run.
  std::uint64_t rows = recovery_.rows;
  if (rows > 0) PublishSnapshot(rows);
  util::BitVector row;
  for (;;) {
    if (!ring_.TryPop(&row)) {
      // Re-check the ring after seeing stop: the producer sets stop only
      // after its last Push, so stop + empty means fully drained.
      if (stop_.load(std::memory_order_acquire) && ring_.Empty()) break;
      std::this_thread::yield();
      continue;
    }
    // Write-ahead: the row reaches the log before the builder -- the
    // recovered prefix therefore contains every row the builder ever
    // observed. A log I/O failure latches durability off but ingest
    // continues (availability over durability); the operator learns via
    // stderr + wal_failed().
    if (wal_ != nullptr && !wal_failed() && !wal_->Append(row)) {
      std::fprintf(stderr,
                   "ifsketch ingest: WAL failed, continuing without "
                   "durability: %s\n",
                   wal_->error().c_str());
      wal_failed_.store(true, std::memory_order_release);
    }
    builder_->Observe(row);
    ++rows;
    rows_ingested_.store(rows, std::memory_order_release);
    rows_metric_->Add();
    occupancy_metric_->Set(static_cast<std::int64_t>(ring_.SizeApprox()));
    if (rows % options_.rows_per_snapshot == 0) PublishSnapshot(rows);
  }
  if (rows > last_published_rows_) PublishSnapshot(rows);
}

void IngestService::PublishSnapshot(std::uint64_t rows) {
  // Checkpoint BEFORE the snapshot becomes visible: anything a consumer
  // can query must survive a crash, so recovery restores at least the
  // rows of the newest published snapshot.
  if (wal_ != nullptr && !wal_failed() &&
      !wal_->Checkpoint(*builder_, rng_, rows)) {
    std::fprintf(stderr,
                 "ifsketch ingest: WAL checkpoint failed, continuing "
                 "without durability: %s\n",
                 wal_->error().c_str());
    wal_failed_.store(true, std::memory_order_release);
  }
  const auto publish_start = std::chrono::steady_clock::now();
  sketch::SketchFile file;
  file.algorithm = options_.algorithm;
  file.params = options_.params;
  file.n = rows;
  file.d = options_.d;
  file.summary = builder_->Summary();
  auto engine = Engine::FromFile(std::move(file));
  // The builder produced the summary through the registered algorithm's
  // own layout, so FromFile's size validation cannot fail here.
  IFSKETCH_CHECK(engine.has_value());
  last_published_rows_ = rows;
  auto shared = std::make_shared<const Engine>(std::move(*engine));
  snapshots_published_.fetch_add(1, std::memory_order_acq_rel);
  publish_(std::move(shared), rows);
  snapshots_metric_->Add();
  publish_metric_->Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - publish_start)
          .count()));
}

}  // namespace ifsketch::ingest
