// Lock-free bounded single-producer/single-consumer ring.
//
// The ingest pipeline's only cross-thread handoff: the feeder thread
// pushes transaction rows, the ingest thread pops them (ingest.h). The
// ring is the classic Lamport queue with two refinements:
//
//   - head_ and tail_ live on separate cache lines (alignas(64)) so the
//     producer and consumer never false-share their hot counters.
//   - Each side caches the other side's last-seen index and only re-reads
//     the shared atomic when the cached value says the ring looks full
//     (producer) or empty (consumer), cutting cross-core traffic to one
//     acquire-load per wraparound in the steady state.
//
// Memory ordering is the minimal release/acquire pairing: the producer's
// release-store of tail_ publishes the slot write it just made, and the
// consumer's acquire-load of tail_ synchronizes with it (symmetrically
// for head_ on the recycle path). Capacity is rounded up to a power of
// two so index masking is a single AND.
//
// SPSC only: exactly one thread may call TryPush and exactly one thread
// may call TryPop. Neither blocks; callers decide the backoff policy
// (IngestService::Push spins with yield).
#ifndef IFSKETCH_INGEST_SPSC_RING_H_
#define IFSKETCH_INGEST_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ifsketch::ingest {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) : slots_(RoundUpPow2(capacity)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Moves `value` into the ring and returns true, or
  /// returns false (value untouched) when the ring is full.
  bool TryPush(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) return false;
    }
    slots_[tail & (slots_.size() - 1)] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Moves the oldest element into `*out` and returns
  /// true, or returns false when the ring is empty.
  bool TryPop(T* out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & (slots_.size() - 1)]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// True when a TryPop would fail right now. Only meaningful on the
  /// consumer thread (the producer may push concurrently).
  bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy: how many elements a sequence of TryPops
  /// could currently drain. Racy by design (both indices move under the
  /// reader) but always in [0, capacity]; meant for metrics sampling,
  /// not for flow-control decisions.
  std::size_t SizeApprox() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t delta = tail - head;
    return delta > slots_.size() ? slots_.size()
                                 : static_cast<std::size_t>(delta);
  }

  /// The power-of-two slot count.
  std::size_t capacity() const { return slots_.size(); }

 private:
  static std::size_t RoundUpPow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next index to pop
  alignas(64) std::uint64_t cached_tail_ = 0;       // consumer's view of tail_
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next index to push
  alignas(64) std::uint64_t cached_head_ = 0;       // producer's view of head_
};

}  // namespace ifsketch::ingest

#endif  // IFSKETCH_INGEST_SPSC_RING_H_
