// Build-while-serve ingest: streaming sketch maintenance with periodic
// immutable snapshot publication.
//
// The paper's streaming claim (§1.2: row sampling is the optimal
// streaming architecture) meets the serving stack here. An IngestService
// owns a dedicated ingest thread fed through a bounded lock-free SPSC
// ring (spsc_ring.h). The thread consumes transaction rows, advances a
// sketch::StreamingBuilder (any registry algorithm implementing the
// sketch::StreamingSketch mixin -- STREAM-SUBSAMPLE, STREAM-STRATIFIED,
// STREAM-IMPORTANCE), and every rows_per_snapshot rows serializes the
// builder state into a full ifsketch::Engine via Engine::FromFile and
// hands it to the publish callback. Snapshots are immutable: queries on
// an already-published Engine never see later rows, and the callback
// typically routes into serve::SketchPod::Publish, whose atomic
// shared_ptr swap retires the previous snapshot exactly like eviction
// (in-flight queries finish on their own reference).
//
// Threading contract:
//   - Exactly one producer thread calls Push / Finish (SPSC ring).
//   - The ingest thread is the only toucher of the builder and the Rng,
//     so builder state needs no locking; the publish callback runs on
//     the ingest thread and must be safe to call from there.
//   - rows_ingested() / snapshots_published() are atomic and readable
//     from any thread.
//
// Determinism contract (what the bit-identity tests enforce): snapshots
// are published at exact row counts, builders only draw randomness in
// Observe, and summary layouts are data-independent -- so the snapshot
// after N rows is bit-identical to Engine::Build over the same N-row
// prefix with the same seed.
#ifndef IFSKETCH_INGEST_INGEST_H_
#define IFSKETCH_INGEST_INGEST_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "engine.h"
#include "ingest/spsc_ring.h"
#include "ingest/wal.h"
#include "obs/metrics.h"
#include "sketch/streaming.h"
#include "util/durable.h"
#include "util/random.h"

namespace ifsketch::ingest {

struct IngestOptions {
  /// Registry name of a streaming algorithm (must implement the
  /// sketch::StreamingSketch mixin).
  std::string algorithm = "STREAM-SUBSAMPLE";
  core::SketchParams params;
  /// Row width; every pushed row must have exactly this many bits.
  std::size_t d = 0;
  /// Seed of the builder's dedicated Rng.
  std::uint64_t seed = 1;
  /// Publish a snapshot every this many ingested rows (and once more at
  /// Finish if rows remain since the last snapshot).
  std::size_t rows_per_snapshot = 10000;
  /// SPSC ring size (rounded up to a power of two).
  std::size_t ring_capacity = 1024;
  /// Metrics sink (ingest_rows_total, ingest_snapshots_total,
  /// ingest_publish_ns, ingest_ring_occupancy -- see obs/metrics.h).
  /// nullptr = the process-wide default registry.
  obs::MetricsRegistry* registry = nullptr;

  // ---- durability (PR 10). Empty wal_dir = no WAL, the pre-PR-10
  // in-memory behavior. Non-empty: every row is logged write-ahead to
  // that directory and the builder + Rng state is checkpointed at every
  // snapshot publication, so Create on the same directory after a crash
  // recovers a prefix of the stream and continues bit-identically to an
  // unbroken run over that prefix (see ingest/wal.h).
  std::string wal_dir;
  WalSyncPolicy wal_sync = WalSyncPolicy::kOnSnapshot;
  /// Appends per fsync under WalSyncPolicy::kEveryN.
  std::uint64_t wal_sync_every = 64;
  /// Test seam: forwarded to WalOptions::sink_factory.
  util::FileSinkFactory wal_sink_factory;
};

/// Dedicated ingest thread + ring + streaming builder. See the file
/// comment for the threading and determinism contracts.
class IngestService {
 public:
  /// Receives each published snapshot and the exact number of rows it
  /// covers. Runs on the ingest thread.
  using PublishFn =
      std::function<void(std::shared_ptr<const Engine>, std::uint64_t)>;

  /// Resolves options.algorithm through the builtin registry and starts
  /// the ingest thread. nullptr (with *error set when non-null) when the
  /// algorithm is unknown or not streaming, or options are degenerate.
  static std::unique_ptr<IngestService> Create(const IngestOptions& options,
                                               PublishFn publish,
                                               std::string* error = nullptr);

  /// Finishes (drains + final snapshot) if the caller never did.
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Enqueues one row (width options.d). Blocks -- spinning with
  /// yield -- while the ring is full. Producer thread only; must not be
  /// called after Finish().
  void Push(util::BitVector row);

  /// Drains the ring, publishes a final snapshot of any rows not yet
  /// covered by one, and joins the ingest thread. Idempotent.
  void Finish();

  /// Rows fully ingested (observed by the builder) so far.
  std::uint64_t rows_ingested() const {
    return rows_ingested_.load(std::memory_order_acquire);
  }

  /// Snapshots handed to the publish callback so far.
  std::uint64_t snapshots_published() const {
    return snapshots_published_.load(std::memory_order_acquire);
  }

  /// What Create recovered from options.wal_dir (all-zero when the WAL
  /// was absent, empty, or disabled). Immutable after Create returns.
  const WalRecovery& recovery() const { return recovery_; }

  /// True once a WAL append/checkpoint I/O failure latched. The service
  /// keeps ingesting (availability over durability); the failure detail
  /// was logged to stderr when it happened.
  bool wal_failed() const {
    return wal_failed_.load(std::memory_order_acquire);
  }

  const IngestOptions& options() const { return options_; }

 private:
  IngestService(IngestOptions options, PublishFn publish,
                std::unique_ptr<core::SketchAlgorithm> algorithm,
                const sketch::StreamingSketch* streaming);

  /// Starts the ingest thread (after Create finished WAL recovery, so
  /// the thread never races the recovery replay on the builder).
  void Start();

  /// Ingest-thread main loop.
  void Run();

  /// Builds an Engine from the builder's current state and hands it to
  /// the publish callback. Ingest thread only.
  void PublishSnapshot(std::uint64_t rows);

  IngestOptions options_;
  PublishFn publish_;
  obs::Counter* rows_metric_;        // ingest_rows_total
  obs::Counter* snapshots_metric_;   // ingest_snapshots_total
  obs::Histogram* publish_metric_;   // ingest_publish_ns
  obs::Gauge* occupancy_metric_;     // ingest_ring_occupancy
  std::unique_ptr<core::SketchAlgorithm> algorithm_;  // keeps name alive
  util::Rng rng_;
  std::unique_ptr<sketch::StreamingBuilder> builder_;
  std::unique_ptr<Wal> wal_;    // nullptr when options_.wal_dir is empty
  WalRecovery recovery_;        // set before the ingest thread starts
  std::atomic<bool> wal_failed_{false};
  SpscRing<util::BitVector> ring_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> rows_ingested_{0};
  std::atomic<std::uint64_t> snapshots_published_{0};
  std::uint64_t last_published_rows_ = 0;  // ingest thread only
  bool finished_ = false;                  // producer thread only
  std::thread thread_;
};

}  // namespace ifsketch::ingest

#endif  // IFSKETCH_INGEST_INGEST_H_
