#include "ingest/wal.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

#include "sketch/sketch_file.h"
#include "util/check.h"
#include "util/crc32c.h"

namespace ifsketch::ingest {
namespace {

constexpr char kSegmentMagic[4] = {'I', 'F', 'W', 'L'};
constexpr char kCheckpointMagic[4] = {'I', 'F', 'W', 'C'};
constexpr std::uint16_t kSegmentVersion = 1;
constexpr std::uint16_t kCheckpointVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 28;
constexpr std::size_t kRecordHeaderBytes = 8;  // len u32 + crc32c u32
constexpr std::size_t kFlushBytes = 64 * 1024;
constexpr char kCheckpointName[] = "checkpoint.ifwc";
// Caps name/state fields so a corrupt length can never drive a huge
// allocation before the CRC check would have caught it.
constexpr std::size_t kMaxAlgorithmName = 256;
constexpr std::uint64_t kMaxStateBits = std::uint64_t{1} << 40;

// ------------------------------------------------- little-endian fields

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

const unsigned char* Bytes(const std::string& s) {
  return reinterpret_cast<const unsigned char*>(s.data());
}

std::uint16_t GetU16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

std::uint32_t GetU32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

std::uint64_t GetU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

std::string At(const std::string& path, std::uint64_t offset,
               const std::string& reason) {
  std::ostringstream s;
  s << path << ": byte " << offset << ": " << reason;
  return s.str();
}

// ------------------------------------------------------------ file bits

std::string SegmentFileName(std::uint64_t first_row) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.seg",
                static_cast<unsigned long long>(first_row));
  return name;
}

struct SegmentInfo {
  std::string path;
  std::uint64_t first_row = 0;
};

bool ParseSegmentFileName(const std::string& name, std::uint64_t* first_row) {
  if (name.size() != 24 || name.rfind("wal-", 0) != 0 ||
      name.substr(20) != ".seg") {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = v << 4 | static_cast<std::uint64_t>(digit);
  }
  *first_row = v;
  return true;
}

/// Segments in the directory, ascending by first row. Non-segment
/// entries (the checkpoint, *.tmp leftovers) are ignored.
bool ListSegments(const std::string& dir, std::vector<SegmentInfo>* out,
                  std::string* error) {
  out->clear();
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t first_row;
    if (ParseSegmentFileName(entry.path().filename().string(), &first_row)) {
      out->push_back({entry.path().string(), first_row});
    }
  }
  if (ec) {
    if (error != nullptr) *error = dir + ": " + ec.message();
    return false;
  }
  std::sort(out->begin(), out->end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.first_row < b.first_row;
            });
  return true;
}

bool ReadWholeFile(const std::string& path, std::string* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (error != nullptr) *error = path + ": cannot open";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// --------------------------------------------------------- row framing

void AppendRecord(std::string* out, const util::BitVector& row,
                  std::size_t payload_bytes) {
  PutU32(out, static_cast<std::uint32_t>(payload_bytes));
  std::string payload;
  payload.reserve(payload_bytes);
  const std::uint64_t* words = row.data();
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    payload.push_back(
        static_cast<char>(words[i / 8] >> (8 * (i % 8)) & 0xFF));
  }
  PutU32(out, util::Crc32c(payload.data(), payload.size()));
  out->append(payload);
}

/// Unpacks a record payload into a width-d row; false when padding bits
/// past d are set (corruption the CRC happened to bless -- reject).
bool DecodeRow(const unsigned char* p, std::size_t payload_bytes,
               std::size_t d, util::BitVector* out) {
  std::vector<std::uint64_t> words((d + 63) / 64, 0);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    words[i / 8] |= static_cast<std::uint64_t>(p[i]) << (8 * (i % 8));
  }
  const std::size_t tail = d % 64;
  if (tail != 0 && words.back() >> tail != 0) return false;
  *out = util::BitVector::AdoptWords(std::move(words), d);
  return true;
}

// ----------------------------------------------------- segment headers

std::string EncodeSegmentHeader(std::uint64_t d, std::uint64_t first_row) {
  std::string out;
  out.append(kSegmentMagic, 4);
  PutU16(&out, kSegmentVersion);
  PutU16(&out, 0);  // flags
  PutU64(&out, d);
  PutU64(&out, first_row);
  PutU32(&out, util::Crc32c(out.data(), out.size()));
  return out;
}

// ------------------------------------------------- checkpoint encoding

struct CheckpointData {
  std::string algorithm;
  core::SketchParams params;
  std::uint64_t d = 0;
  std::uint64_t seed = 0;
  std::uint64_t rows = 0;
  util::Rng::State rng_state{};
  util::BitVector builder_state;
};

std::string EncodeCheckpoint(const std::string& algorithm,
                             const core::SketchParams& params,
                             std::uint64_t d, std::uint64_t seed,
                             std::uint64_t rows,
                             const util::Rng::State& rng_state,
                             const util::BitVector& builder_state) {
  std::string out;
  out.append(kCheckpointMagic, 4);
  PutU16(&out, kCheckpointVersion);
  PutU16(&out, static_cast<std::uint16_t>(algorithm.size()));
  out.append(algorithm);
  PutU32(&out, static_cast<std::uint32_t>(params.k));
  PutF64(&out, params.eps);
  PutF64(&out, params.delta);
  out.push_back(static_cast<char>(params.scope));
  out.push_back(static_cast<char>(params.answer));
  PutU64(&out, d);
  PutU64(&out, seed);
  PutU64(&out, rows);
  for (std::uint64_t word : rng_state.s) PutU64(&out, word);
  out.push_back(rng_state.have_cached_gaussian ? 1 : 0);
  PutF64(&out, rng_state.cached_gaussian);
  PutU64(&out, builder_state.size());
  for (std::size_t i = 0; i < builder_state.num_words(); ++i) {
    PutU64(&out, builder_state.data()[i]);
  }
  PutU32(&out, util::Crc32c(out.data(), out.size()));
  return out;
}

bool DecodeCheckpoint(const std::string& path, const std::string& bytes,
                      CheckpointData* out, std::string* error) {
  const unsigned char* p = Bytes(bytes);
  const std::size_t size = bytes.size();
  auto fail = [&](std::uint64_t at, const std::string& reason) {
    if (error != nullptr) *error = At(path, at, reason);
    return false;
  };
  // Whole-file CRC first: the checkpoint is written atomically, so a bad
  // checksum is genuine corruption, not a torn write.
  if (size < kSegmentHeaderBytes) return fail(0, "checkpoint truncated");
  if (util::Crc32c(p, size - 4) != GetU32(p + size - 4)) {
    return fail(size - 4, "checkpoint checksum mismatch");
  }
  if (std::memcmp(p, kCheckpointMagic, 4) != 0) {
    return fail(0, "bad checkpoint magic");
  }
  if (GetU16(p + 4) != kCheckpointVersion) {
    return fail(4, "unsupported checkpoint version");
  }
  const std::size_t name_len = GetU16(p + 6);
  if (name_len == 0 || name_len > kMaxAlgorithmName) {
    return fail(6, "implausible algorithm name length");
  }
  std::size_t at = 8;
  auto need = [&](std::size_t n) { return size - 4 - at >= n; };
  if (!need(name_len + 30)) return fail(at, "checkpoint truncated");
  out->algorithm.assign(bytes, at, name_len);
  at += name_len;
  out->params.k = GetU32(p + at);
  at += 4;
  out->params.eps = std::bit_cast<double>(GetU64(p + at));
  at += 8;
  out->params.delta = std::bit_cast<double>(GetU64(p + at));
  at += 8;
  if (p[at] > 1) return fail(at, "bad scope byte");
  out->params.scope = static_cast<core::Scope>(p[at]);
  ++at;
  if (p[at] > 1) return fail(at, "bad answer byte");
  out->params.answer = static_cast<core::Answer>(p[at]);
  ++at;
  if (!core::ValidSketchParams(out->params)) {
    return fail(8 + name_len, "invalid sketch parameters");
  }
  if (!need(24 + 41 + 8)) return fail(at, "checkpoint truncated");
  out->d = GetU64(p + at);
  at += 8;
  if (out->d == 0) return fail(at - 8, "row width must be positive");
  out->seed = GetU64(p + at);
  at += 8;
  out->rows = GetU64(p + at);
  at += 8;
  for (std::uint64_t& word : out->rng_state.s) {
    word = GetU64(p + at);
    at += 8;
  }
  if (p[at] > 1) return fail(at, "bad gaussian-cache byte");
  out->rng_state.have_cached_gaussian = p[at] == 1;
  ++at;
  out->rng_state.cached_gaussian = std::bit_cast<double>(GetU64(p + at));
  at += 8;
  const std::uint64_t state_bits = GetU64(p + at);
  if (state_bits > kMaxStateBits) {
    return fail(at, "implausible builder state size");
  }
  at += 8;
  const std::size_t state_words =
      static_cast<std::size_t>((state_bits + 63) / 64);
  if (size - 4 - at != state_words * 8) {
    return fail(at, "builder state length does not match file size");
  }
  std::vector<std::uint64_t> words(state_words);
  for (std::size_t i = 0; i < state_words; ++i) {
    words[i] = GetU64(p + at);
    at += 8;
  }
  const std::size_t tail = static_cast<std::size_t>(state_bits % 64);
  if (tail != 0 && words.back() >> tail != 0) {
    return fail(at - 8, "builder state has nonzero padding bits");
  }
  out->builder_state = util::BitVector::AdoptWords(
      std::move(words), static_cast<std::size_t>(state_bits));
  return true;
}

// ------------------------------------------------------- segment replay

struct ReplayResult {
  std::uint64_t next_row = 0;  // in: skip rows below; out: final prefix
  std::uint64_t replayed = 0;
  std::uint64_t truncated_bytes = 0;
  std::vector<std::string> torn_notes;
};

/// Walks `segments` in order, validating every frame and feeding rows
/// >= next_row to `observe` (which may be null for verification only).
/// A bad frame at the tail of the LAST segment is a torn write: replay
/// stops there, the dropped bytes are counted, and a note is recorded.
/// The same damage anywhere else returns false with a located reason.
/// `expected_d` pins the row width (0 = adopt the first segment's).
bool ReplaySegments(const std::vector<SegmentInfo>& segments,
                    std::uint64_t expected_d,
                    const std::function<void(const util::BitVector&)>& observe,
                    ReplayResult* result, std::string* error) {
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SegmentInfo& segment = segments[i];
    const bool last = i + 1 == segments.size();
    std::string bytes;
    if (!ReadWholeFile(segment.path, &bytes, error)) return false;
    const unsigned char* p = Bytes(bytes);

    // `torn` is only a legal verdict for the final bytes of the log.
    auto torn_or_fail = [&](std::uint64_t at, std::uint64_t good_end,
                            const std::string& reason) {
      if (!last) {
        if (error != nullptr) *error = At(segment.path, at, reason);
        return false;
      }
      result->truncated_bytes += bytes.size() - good_end;
      result->torn_notes.push_back(At(segment.path, at, reason));
      return true;
    };

    if (bytes.size() < kSegmentHeaderBytes) {
      if (!torn_or_fail(bytes.size(), 0, "segment header truncated")) {
        return false;
      }
      break;
    }
    if (util::Crc32c(p, kSegmentHeaderBytes - 4) !=
        GetU32(p + kSegmentHeaderBytes - 4)) {
      if (!torn_or_fail(kSegmentHeaderBytes - 4, 0,
                        "segment header checksum mismatch")) {
        return false;
      }
      break;
    }
    auto fail = [&](std::uint64_t at, const std::string& reason) {
      if (error != nullptr) *error = At(segment.path, at, reason);
      return false;
    };
    // Header CRC is valid from here on: field problems are real
    // corruption or a foreign stream, never a torn write.
    if (std::memcmp(p, kSegmentMagic, 4) != 0) return fail(0, "bad magic");
    if (GetU16(p + 4) != kSegmentVersion) {
      return fail(4, "unsupported segment version");
    }
    const std::uint64_t d = GetU64(p + 8);
    if (d == 0) return fail(8, "row width must be positive");
    if (expected_d == 0) expected_d = d;
    if (d != expected_d) return fail(8, "row width differs across the log");
    if (GetU64(p + 16) != segment.first_row) {
      return fail(16, "first row does not match the file name");
    }
    if (segment.first_row > result->next_row) {
      return fail(16, "gap in the log: rows " +
                          std::to_string(result->next_row) + ".." +
                          std::to_string(segment.first_row) + " missing");
    }

    const std::size_t payload_bytes = static_cast<std::size_t>((d + 7) / 8);
    std::uint64_t row_index = segment.first_row;
    std::size_t at = kSegmentHeaderBytes;
    bool stop = false;
    while (at < bytes.size()) {
      const std::size_t remaining = bytes.size() - at;
      if (remaining < kRecordHeaderBytes) {
        if (!torn_or_fail(at, at, "record header truncated")) return false;
        stop = true;
        break;
      }
      const std::uint32_t len = GetU32(p + at);
      if (len != payload_bytes) {
        if (!torn_or_fail(at, at, "record length does not match row width")) {
          return false;
        }
        stop = true;
        break;
      }
      if (remaining < kRecordHeaderBytes + len) {
        if (!torn_or_fail(at, at, "record payload truncated")) return false;
        stop = true;
        break;
      }
      const unsigned char* payload = p + at + kRecordHeaderBytes;
      if (util::Crc32c(payload, len) != GetU32(p + at + 4)) {
        if (!torn_or_fail(at + 4, at, "record checksum mismatch")) {
          return false;
        }
        stop = true;
        break;
      }
      util::BitVector row;
      if (!DecodeRow(payload, len, static_cast<std::size_t>(d), &row)) {
        if (!torn_or_fail(at + kRecordHeaderBytes, at,
                          "record has nonzero padding bits")) {
          return false;
        }
        stop = true;
        break;
      }
      if (row_index >= result->next_row) {
        IFSKETCH_CHECK_EQ(row_index, result->next_row);
        if (observe) observe(row);
        ++result->replayed;
        ++result->next_row;
      }
      ++row_index;
      at += kRecordHeaderBytes + len;
    }
    if (stop) break;  // torn tail: nothing after it may be replayed
  }
  return true;
}

}  // namespace

// --------------------------------------------------------- sync policy

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kEveryRecord:
      return "every_record";
    case WalSyncPolicy::kEveryN:
      return "every_n";
    case WalSyncPolicy::kOnSnapshot:
      return "on_snapshot";
  }
  return "unknown";
}

bool ParseWalSyncPolicy(const std::string& text, WalSyncPolicy* policy) {
  if (text == "every_record") {
    *policy = WalSyncPolicy::kEveryRecord;
  } else if (text == "every_n") {
    *policy = WalSyncPolicy::kEveryN;
  } else if (text == "on_snapshot") {
    *policy = WalSyncPolicy::kOnSnapshot;
  } else {
    return false;
  }
  return true;
}

// ------------------------------------------------------------------ Wal

Wal::Wal(const WalOptions& options, const std::string& algorithm,
         const core::SketchParams& params, std::size_t d, std::uint64_t seed)
    : options_(options),
      algorithm_(algorithm),
      params_(params),
      d_(d),
      seed_(seed),
      record_payload_bytes_((d + 7) / 8) {
  obs::MetricsRegistry& registry = options.registry != nullptr
                                       ? *options.registry
                                       : obs::MetricsRegistry::Default();
  records_metric_ = registry.GetCounter("wal_records_total");
  fsync_metric_ = registry.GetHistogram("wal_fsync_ns");
  segment_bytes_metric_ = registry.GetGauge("wal_segment_bytes");
  replayed_metric_ = registry.GetCounter("recovery_replayed_rows_total");
}

Wal::~Wal() {
  // Best-effort flush of buffered appends (no fsync: the policy already
  // said how much a power loss may take).
  if (ok() && segment_ != nullptr) {
    FlushBuffer();
    segment_->Close();
  }
}

bool Wal::Fail(const std::string& detail) {
  if (error_.empty()) {
    error_ = detail.empty() ? "write-ahead log failed" : detail;
  }
  return false;
}

std::unique_ptr<Wal> Wal::Open(const WalOptions& options,
                               const std::string& algorithm,
                               const core::SketchParams& params,
                               std::size_t d, std::uint64_t seed,
                               sketch::StreamingBuilder* builder,
                               util::Rng* rng, WalRecovery* recovery,
                               std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return nullptr;
  };
  if (options.dir.empty()) return fail("wal: directory must not be empty");
  if (options.sync == WalSyncPolicy::kEveryN && options.sync_every == 0) {
    return fail("wal: sync_every must be >= 1 under every_n");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) return fail("wal: cannot create " + options.dir + ": " +
                      ec.message());

  std::unique_ptr<Wal> wal(new Wal(options, algorithm, params, d, seed));
  WalRecovery rec;
  std::uint64_t next_row = 0;

  // 1. Restore the checkpoint, when one exists. It was written
  // atomically, so any decode failure is corruption, not a torn write.
  const std::string ckpt_path = options.dir + "/" + kCheckpointName;
  if (std::filesystem::exists(ckpt_path, ec)) {
    std::string bytes, reason;
    if (!ReadWholeFile(ckpt_path, &bytes, &reason)) return fail(reason);
    CheckpointData ckpt;
    if (!DecodeCheckpoint(ckpt_path, bytes, &ckpt, &reason)) {
      return fail(reason);
    }
    if (ckpt.algorithm != algorithm || ckpt.d != d || ckpt.seed != seed ||
        ckpt.params.k != params.k || ckpt.params.eps != params.eps ||
        ckpt.params.delta != params.delta ||
        ckpt.params.scope != params.scope ||
        ckpt.params.answer != params.answer) {
      return fail(ckpt_path +
                  ": checkpoint belongs to a different stream identity "
                  "(algorithm/params/width/seed mismatch)");
    }
    if (!builder->RestoreState(ckpt.builder_state)) {
      return fail(ckpt_path + ": builder state does not decode");
    }
    if (builder->rows_seen() != ckpt.rows) {
      return fail(ckpt_path + ": builder state row count disagrees with "
                              "the checkpoint header");
    }
    rng->RestoreState(ckpt.rng_state);
    next_row = ckpt.rows;
    rec.checkpoint_rows = ckpt.rows;
  }

  // 2. Replay the tail past the checkpoint, truncating a torn end.
  std::vector<SegmentInfo> segments;
  std::string reason;
  if (!ListSegments(options.dir, &segments, &reason)) return fail(reason);
  ReplayResult replay;
  replay.next_row = next_row;
  if (!ReplaySegments(
          segments, d,
          [builder](const util::BitVector& row) { builder->Observe(row); },
          &replay, &reason)) {
    return fail(reason);
  }
  rec.replayed_rows = replay.replayed;
  rec.truncated_bytes = replay.truncated_bytes;
  rec.rows = replay.next_row;
  wal->replayed_metric_->Add(replay.replayed);

  // 3. Make the recovered state durable again before accepting appends:
  // fresh checkpoint, fresh segment, stale segments pruned. The dir is
  // pristine afterwards no matter how mangled the tail was.
  if (!wal->WriteCheckpoint(*builder, *rng, rec.rows) ||
      !wal->OpenSegment(rec.rows)) {
    return fail(wal->error());
  }
  for (const SegmentInfo& segment : segments) {
    // A stale segment can share the fresh one's name (a crash right
    // after a rotation leaves wal-<rows>.seg behind, and OpenSegment
    // just recreated that path) -- unlinking it would orphan the live
    // file descriptor and silently drop every append after it.
    if (segment.path == wal->segment_path_) continue;
    std::filesystem::remove(segment.path, ec);
  }
  if (!util::SyncDir(options.dir, &reason)) return fail(reason);

  if (recovery != nullptr) *recovery = rec;
  return wal;
}

bool Wal::Append(const util::BitVector& row) {
  if (!ok()) return false;
  IFSKETCH_CHECK_EQ(row.size(), d_);
  AppendRecord(&buffer_, row, record_payload_bytes_);
  segment_bytes_ += kRecordHeaderBytes + record_payload_bytes_;
  records_metric_->Add();
  segment_bytes_metric_->Set(static_cast<std::int64_t>(segment_bytes_));
  ++records_since_sync_;
  const bool want_sync =
      options_.sync == WalSyncPolicy::kEveryRecord ||
      (options_.sync == WalSyncPolicy::kEveryN &&
       records_since_sync_ >= options_.sync_every);
  if ((want_sync || buffer_.size() >= kFlushBytes) && !FlushBuffer()) {
    return false;
  }
  if (want_sync && !SyncSegment()) return false;
  return true;
}

bool Wal::Checkpoint(const sketch::StreamingBuilder& builder,
                     const util::Rng& rng, std::uint64_t rows) {
  if (!ok()) return false;
  // Rows <= `rows` become durable twice over: the segment fsync makes
  // the raw log stable, then the checkpoint supersedes it. The fsync
  // runs under every policy -- this IS the on_snapshot sync point.
  if (!FlushBuffer() || !SyncSegment()) return false;
  if (!WriteCheckpoint(builder, rng, rows)) return false;
  if (!segment_->Close()) return Fail(segment_->error());
  const std::string old_path = segment_path_;
  if (!OpenSegment(rows)) return false;
  // A checkpoint at the segment's own first row (recovery republishing,
  // or two barriers with no rows between) reopens the SAME path;
  // removing it would unlink the active segment out from under its fd.
  if (old_path != segment_path_) {
    std::error_code ec;
    std::filesystem::remove(old_path, ec);
  }
  std::string reason;
  if (!util::SyncDir(options_.dir, &reason)) return Fail(reason);
  return true;
}

bool Wal::FlushBuffer() {
  if (buffer_.empty()) return true;
  if (!segment_->Write(buffer_.data(), buffer_.size())) {
    buffer_.clear();
    return Fail(segment_->error());
  }
  buffer_.clear();
  return true;
}

bool Wal::SyncSegment() {
  const auto start = std::chrono::steady_clock::now();
  if (!segment_->Sync()) return Fail(segment_->error());
  fsync_metric_->Record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  records_since_sync_ = 0;
  return true;
}

bool Wal::OpenSegment(std::uint64_t first_row) {
  segment_path_ = options_.dir + "/" + SegmentFileName(first_row);
  segment_ = options_.sink_factory
                 ? options_.sink_factory(segment_path_)
                 : std::make_unique<util::PosixFileSink>(segment_path_);
  const std::string header = EncodeSegmentHeader(d_, first_row);
  if (!segment_->Write(header.data(), header.size()) || !segment_->Sync()) {
    return Fail(segment_->error());
  }
  std::string reason;
  if (!util::SyncDir(options_.dir, &reason)) return Fail(reason);
  buffer_.clear();
  segment_bytes_ = header.size();
  segment_bytes_metric_->Set(static_cast<std::int64_t>(segment_bytes_));
  records_since_sync_ = 0;
  return true;
}

bool Wal::WriteCheckpoint(const sketch::StreamingBuilder& builder,
                          const util::Rng& rng, std::uint64_t rows) {
  const std::string bytes =
      EncodeCheckpoint(algorithm_, params_, d_, seed_, rows, rng.SaveState(),
                       builder.SaveState());
  std::string reason;
  if (!util::WriteFileAtomic(options_.dir + "/" + kCheckpointName,
                             bytes.data(), bytes.size(), &reason,
                             options_.sink_factory)) {
    return Fail(reason);
  }
  return true;
}

// ------------------------------------------------------------ fsck walk

WalFsckReport VerifyWalDir(const std::string& dir) {
  WalFsckReport report;
  auto fail = [&report](const std::string& located) {
    report.ok = false;
    report.failures.push_back(located);
  };

  std::uint64_t next_row = 0;
  std::uint64_t expected_d = 0;
  std::error_code ec;
  const std::string ckpt_path = dir + "/" + kCheckpointName;
  if (std::filesystem::exists(ckpt_path, ec)) {
    std::string bytes, reason;
    CheckpointData ckpt;
    if (!ReadWholeFile(ckpt_path, &bytes, &reason) ||
        !DecodeCheckpoint(ckpt_path, bytes, &ckpt, &reason)) {
      fail(reason);
    } else {
      next_row = ckpt.rows;
      expected_d = ckpt.d;
      // The saved builder state must decode for the algorithm the
      // checkpoint names -- otherwise recovery would refuse it.
      sketch::SketchFile probe;
      probe.algorithm = ckpt.algorithm;
      probe.params = ckpt.params;
      probe.n = ckpt.rows;
      probe.d = static_cast<std::size_t>(ckpt.d);
      auto algorithm = sketch::ResolveAlgorithm(probe);
      const auto* streaming =
          dynamic_cast<const sketch::StreamingSketch*>(algorithm.get());
      if (streaming == nullptr) {
        fail(At(ckpt_path, 8,
                "unknown or non-streaming algorithm: " + ckpt.algorithm));
      } else {
        util::Rng rng(ckpt.seed);
        auto builder = streaming->NewBuilder(
            static_cast<std::size_t>(ckpt.d), ckpt.params, rng);
        if (!builder->RestoreState(ckpt.builder_state)) {
          fail(At(ckpt_path, 0, "builder state does not decode"));
        } else if (builder->rows_seen() != ckpt.rows) {
          fail(At(ckpt_path, 0,
                  "builder state row count disagrees with the header"));
        }
      }
    }
  } else if (!std::filesystem::exists(dir, ec)) {
    fail(dir + ": byte 0: no such directory");
    return report;
  } else {
    report.notes.push_back(dir + ": no checkpoint (nothing published yet)");
  }

  std::vector<SegmentInfo> segments;
  std::string reason;
  if (!ListSegments(dir, &segments, &reason)) {
    fail(reason);
    return report;
  }
  ReplayResult replay;
  replay.next_row = next_row;
  if (!ReplaySegments(segments, expected_d, nullptr, &replay, &reason)) {
    fail(reason);
  }
  for (const std::string& note : replay.torn_notes) {
    report.notes.push_back(note + " (recoverable torn tail)");
  }
  if (std::filesystem::exists(ckpt_path + ".tmp", ec)) {
    report.notes.push_back(ckpt_path +
                           ".tmp: leftover temp file (crash mid-checkpoint; "
                           "superseded and ignored)");
  }
  return report;
}

}  // namespace ifsketch::ingest
