#include "lp/l1fit.h"

#include "lp/simplex.h"
#include "util/check.h"

namespace ifsketch::lp {

std::optional<L1FitResult> L1RegressionBox(const linalg::Matrix& a,
                                           const linalg::Vector& b,
                                           double lo, double hi,
                                           std::size_t max_iterations) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  IFSKETCH_CHECK_EQ(b.size(), m);
  IFSKETCH_CHECK_LT(lo, hi);

  // Variables (all >= 0): u (n, x = lo + u), s (n, u + s = hi - lo),
  // rp (m), rn (m) with A u - rp + rn = b - A*lo.
  const std::size_t num_vars = 2 * n + 2 * m;
  LpProblem p;
  p.a = linalg::Matrix(m + n, num_vars);
  p.b.assign(m + n, 0.0);
  p.c.assign(num_vars, 0.0);

  // Residual constraints.
  for (std::size_t r = 0; r < m; ++r) {
    double shift = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      p.a(r, c) = a(r, c);
      shift += a(r, c) * lo;
    }
    p.a(r, 2 * n + r) = -1.0;      // rp
    p.a(r, 2 * n + m + r) = 1.0;   // rn
    p.b[r] = b[r] - shift;
  }
  // Box constraints u + s = hi - lo.
  for (std::size_t i = 0; i < n; ++i) {
    p.a(m + i, i) = 1.0;
    p.a(m + i, n + i) = 1.0;
    p.b[m + i] = hi - lo;
  }
  // Objective: sum of residual parts.
  for (std::size_t r = 0; r < m; ++r) {
    p.c[2 * n + r] = 1.0;
    p.c[2 * n + m + r] = 1.0;
  }

  const LpSolution sol = SolveStandardForm(p, max_iterations);
  if (sol.status != LpStatus::kOptimal) return std::nullopt;

  L1FitResult out;
  out.x.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.x[i] = lo + sol.x[i];
  out.residual_l1 = sol.objective;
  return out;
}

}  // namespace ifsketch::lp
