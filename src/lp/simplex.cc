#include "lp/simplex.h"

#include <cmath>
#include <vector>

#include "util/check.h"

namespace ifsketch::lp {
namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau over the columns of one phase.
//
// Layout: rows 0..m-1 are constraints (columns 0..n-1 variables, column n
// the rhs); row m is the objective (reduced costs, rhs = -objective).
class Tableau {
 public:
  Tableau(std::size_t m, std::size_t n) : m_(m), n_(n), t_(m + 1, linalg::Vector(n + 1, 0.0)), basis_(m) {}

  double& At(std::size_t r, std::size_t c) { return t_[r][c]; }
  double At(std::size_t r, std::size_t c) const { return t_[r][c]; }
  std::size_t basis(std::size_t r) const { return basis_[r]; }
  void set_basis(std::size_t r, std::size_t col) { basis_[r] = col; }

  // Pivots on (row, col): scales the row and eliminates the column
  // everywhere else.
  void Pivot(std::size_t row, std::size_t col) {
    const double p = t_[row][col];
    IFSKETCH_CHECK(std::fabs(p) > kEps);
    for (std::size_t c = 0; c <= n_; ++c) t_[row][c] /= p;
    for (std::size_t r = 0; r <= m_; ++r) {
      if (r == row) continue;
      const double f = t_[r][col];
      if (f == 0.0) continue;
      for (std::size_t c = 0; c <= n_; ++c) t_[r][c] -= f * t_[row][c];
    }
    basis_[row] = col;
  }

  // One phase of simplex with Bland's rule. `allowed` marks columns
  // eligible to enter. Returns kOptimal / kUnbounded / kIterationLimit.
  LpStatus Run(const std::vector<bool>& allowed, std::size_t& iterations,
               std::size_t max_iterations) {
    while (true) {
      if (iterations >= max_iterations) return LpStatus::kIterationLimit;
      // Bland: entering column = lowest index with negative reduced cost.
      std::size_t enter = n_;
      for (std::size_t c = 0; c < n_; ++c) {
        if (allowed[c] && t_[m_][c] < -kEps) {
          enter = c;
          break;
        }
      }
      if (enter == n_) return LpStatus::kOptimal;
      // Ratio test; ties broken by lowest basis index (Bland).
      std::size_t leave = m_;
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        if (t_[r][enter] > kEps) {
          const double ratio = t_[r][n_] / t_[r][enter];
          if (leave == m_ || ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && basis_[r] < basis_[leave])) {
            leave = r;
            best_ratio = ratio;
          }
        }
      }
      if (leave == m_) return LpStatus::kUnbounded;
      Pivot(leave, enter);
      ++iterations;
    }
  }

  std::size_t m() const { return m_; }
  std::size_t n() const { return n_; }

 private:
  std::size_t m_;
  std::size_t n_;
  std::vector<linalg::Vector> t_;
  std::vector<std::size_t> basis_;
};

}  // namespace

const char* ToString(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

LpSolution SolveStandardForm(const LpProblem& problem,
                             std::size_t max_iterations) {
  const std::size_t m = problem.a.rows();
  const std::size_t n = problem.a.cols();
  IFSKETCH_CHECK_EQ(problem.b.size(), m);
  IFSKETCH_CHECK_EQ(problem.c.size(), n);
  if (max_iterations == 0) max_iterations = 50 * (m + n) + 1000;

  // Phase 1: minimize the sum of artificial variables (columns n..n+m-1).
  Tableau tab(m, n + m);
  for (std::size_t r = 0; r < m; ++r) {
    const double sign = problem.b[r] >= 0.0 ? 1.0 : -1.0;
    for (std::size_t c = 0; c < n; ++c) {
      tab.At(r, c) = sign * problem.a(r, c);
    }
    tab.At(r, n + r) = 1.0;
    tab.At(r, n + m) = sign * problem.b[r];
    tab.set_basis(r, n + r);
  }
  // Phase-1 objective row: sum of artificial rows, negated into reduced
  // costs (cost 1 on artificials; eliminate them since they are basic).
  for (std::size_t c = 0; c <= n + m; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < m; ++r) acc += tab.At(r, c);
    if (c < n) {
      tab.At(m, c) = -acc;
    } else if (c < n + m) {
      tab.At(m, c) = 0.0;
    } else {
      tab.At(m, c) = -acc;
    }
  }

  std::size_t iterations = 0;
  std::vector<bool> allowed(n + m, true);
  LpStatus status = tab.Run(allowed, iterations, max_iterations);
  LpSolution solution;
  if (status == LpStatus::kIterationLimit) {
    solution.status = status;
    return solution;
  }
  // Phase-1 objective value = -rhs of the objective row.
  const double phase1 = -tab.At(m, n + m);
  if (phase1 > 1e-6) {
    solution.status = LpStatus::kInfeasible;
    return solution;
  }
  // Drive any artificial still in the basis out (degenerate case): pivot
  // on any real column with a nonzero entry; if none, the row is
  // redundant and stays put (its artificial remains at value 0).
  for (std::size_t r = 0; r < m; ++r) {
    if (tab.basis(r) >= n) {
      for (std::size_t c = 0; c < n; ++c) {
        if (std::fabs(tab.At(r, c)) > kEps) {
          tab.Pivot(r, c);
          break;
        }
      }
    }
  }

  // Phase 2: install the real objective. Reduced costs: c_j minus the
  // basic-cost combination; recompute from scratch.
  for (std::size_t c = 0; c <= tab.n(); ++c) tab.At(m, c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) tab.At(m, c) = problem.c[c];
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t bc = tab.basis(r);
    const double cost = bc < n ? problem.c[bc] : 0.0;
    if (cost == 0.0) continue;
    for (std::size_t c = 0; c <= tab.n(); ++c) {
      tab.At(m, c) -= cost * tab.At(r, c);
    }
  }
  // Exclude artificial columns from entering in phase 2.
  for (std::size_t c = n; c < n + m; ++c) allowed[c] = false;

  status = tab.Run(allowed, iterations, max_iterations);
  solution.status = status;
  if (status != LpStatus::kOptimal) return solution;

  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (tab.basis(r) < n) solution.x[tab.basis(r)] = tab.At(r, tab.n());
  }
  solution.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    solution.objective += problem.c[c] * solution.x[c];
  }
  return solution;
}

}  // namespace ifsketch::lp
