// L1 regression via linear programming.
//
// min ||A x - b||_1 with box constraints lo <= x_i <= hi, reduced to
// standard form by splitting residuals into positive/negative parts and
// shifting/bounding x with slack variables. This is the decoding step of
// Lemma 24 (De's reconstruction) and of the Lemma 21 consistency decoder:
// L1's robustness to a few large-error answers is exactly why the paper
// can work with sketches accurate only "on average".
#ifndef IFSKETCH_LP_L1FIT_H_
#define IFSKETCH_LP_L1FIT_H_

#include <optional>

#include "linalg/matrix.h"

namespace ifsketch::lp {

/// Result of an L1 fit.
struct L1FitResult {
  linalg::Vector x;       ///< The minimizer.
  double residual_l1 = 0; ///< ||A x - b||_1 at the minimizer.
};

/// Minimizes ||A x - b||_1 subject to lo <= x_i <= hi for every i.
/// Requires lo < hi (finite box). Returns nullopt only if the solver hits
/// its iteration limit (the problem itself is always feasible).
std::optional<L1FitResult> L1RegressionBox(const linalg::Matrix& a,
                                           const linalg::Vector& b,
                                           double lo, double hi,
                                           std::size_t max_iterations = 0);

}  // namespace ifsketch::lp

#endif  // IFSKETCH_LP_L1FIT_H_
