// A dense two-phase primal simplex solver.
//
// Solves  min c^T x  subject to  A x = b, x >= 0  with Bland's rule for
// anti-cycling. This is the workhorse behind the L1-minimization decoding
// of De [De12] used in the Theorem 16 reconstruction (L2 minimization, as
// in KRSU, breaks under answers that are only accurate on average; L1 is
// what makes the "for at least a 1-gamma fraction of queries" hypothesis
// usable). Dense tableau; intended for problems up to a few thousand
// variables.
#ifndef IFSKETCH_LP_SIMPLEX_H_
#define IFSKETCH_LP_SIMPLEX_H_

#include "linalg/matrix.h"

namespace ifsketch::lp {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* ToString(LpStatus status);

/// min c^T x  s.t.  A x = b, x >= 0.
struct LpProblem {
  linalg::Matrix a;
  linalg::Vector b;
  linalg::Vector c;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  linalg::Vector x;
  double objective = 0.0;
};

/// Solves the standard-form LP. `max_iterations` bounds total pivots
/// across both phases (0 means an automatic limit of 50*(m+n)).
LpSolution SolveStandardForm(const LpProblem& problem,
                             std::size_t max_iterations = 0);

}  // namespace ifsketch::lp

#endif  // IFSKETCH_LP_SIMPLEX_H_
