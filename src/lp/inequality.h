// Inequality-form LP with box constraints.
//
// min c^T x  subject to  G x <= h,  lo <= x_i <= hi.
// Converted to standard form by shifting x, adding box slacks and
// inequality slacks. A general-purpose companion to the L1 fitter:
// threshold constraints extracted from indicator answers have exactly
// this shape.
#ifndef IFSKETCH_LP_INEQUALITY_H_
#define IFSKETCH_LP_INEQUALITY_H_

#include <optional>

#include "lp/simplex.h"

namespace ifsketch::lp {

/// Solves min c^T x s.t. G x <= h, lo <= x <= hi. Returns nullopt when
/// infeasible or the iteration limit is hit.
std::optional<linalg::Vector> SolveInequalityBox(
    const linalg::Matrix& g, const linalg::Vector& h,
    const linalg::Vector& c, double lo, double hi,
    std::size_t max_iterations = 0);

}  // namespace ifsketch::lp

#endif  // IFSKETCH_LP_INEQUALITY_H_
