#include "lp/inequality.h"

#include "util/check.h"

namespace ifsketch::lp {

std::optional<linalg::Vector> SolveInequalityBox(
    const linalg::Matrix& g, const linalg::Vector& h,
    const linalg::Vector& c, double lo, double hi,
    std::size_t max_iterations) {
  const std::size_t m = g.rows();
  const std::size_t n = g.cols();
  IFSKETCH_CHECK_EQ(h.size(), m);
  IFSKETCH_CHECK_EQ(c.size(), n);
  IFSKETCH_CHECK_LT(lo, hi);

  // Variables (all >= 0): u (n, x = lo + u), s (n, u + s = hi - lo),
  // w (m, inequality slacks): G u + w = h - G*lo.
  const std::size_t num_vars = 2 * n + m;
  LpProblem p;
  p.a = linalg::Matrix(m + n, num_vars);
  p.b.assign(m + n, 0.0);
  p.c.assign(num_vars, 0.0);

  for (std::size_t r = 0; r < m; ++r) {
    double shift = 0.0;
    for (std::size_t col = 0; col < n; ++col) {
      p.a(r, col) = g(r, col);
      shift += g(r, col) * lo;
    }
    p.a(r, 2 * n + r) = 1.0;
    p.b[r] = h[r] - shift;
  }
  for (std::size_t i = 0; i < n; ++i) {
    p.a(m + i, i) = 1.0;
    p.a(m + i, n + i) = 1.0;
    p.b[m + i] = hi - lo;
  }
  for (std::size_t i = 0; i < n; ++i) p.c[i] = c[i];

  const LpSolution sol = SolveStandardForm(p, max_iterations);
  if (sol.status != LpStatus::kOptimal) return std::nullopt;

  linalg::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = lo + sol.x[i];
  return x;
}

}  // namespace ifsketch::lp
