#include "linalg/euclidean.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ifsketch::linalg {

SectionEstimate EstimateSectionRatio(const Matrix& a, std::size_t samples,
                                     util::Rng& rng) {
  IFSKETCH_CHECK_GT(samples, 0u);
  const double sqrt_z = std::sqrt(static_cast<double>(a.rows()));
  SectionEstimate est;
  est.samples = samples;
  double sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    Vector x(a.cols());
    for (auto& xi : x) xi = rng.Gaussian();
    const Vector y = a.MultiplyVec(x);
    const double n2 = Norm2(y);
    if (n2 == 0.0) continue;  // x in the null space; ratio undefined
    const double ratio = Norm1(y) / (sqrt_z * n2);
    est.min_ratio = std::min(est.min_ratio, ratio);
    sum += ratio;
  }
  est.mean_ratio = sum / static_cast<double>(samples);
  return est;
}

}  // namespace ifsketch::linalg
