#include "linalg/products.h"

#include "util/check.h"

namespace ifsketch::linalg {

Matrix HadamardProduct(const std::vector<Matrix>& factors) {
  IFSKETCH_CHECK(!factors.empty());
  const std::size_t n = factors[0].cols();
  std::size_t total_rows = 1;
  for (const auto& f : factors) {
    IFSKETCH_CHECK_EQ(f.cols(), n);
    total_rows *= f.rows();
  }
  Matrix out(total_rows, n);
  for (std::size_t r = 0; r < total_rows; ++r) {
    // Decompose r into the index tuple (lexicographic, first factor is
    // the most significant digit).
    std::size_t rem = r;
    std::vector<std::size_t> idx(factors.size());
    for (std::size_t j = factors.size(); j > 0; --j) {
      idx[j - 1] = rem % factors[j - 1].rows();
      rem /= factors[j - 1].rows();
    }
    for (std::size_t h = 0; h < n; ++h) {
      double prod = 1.0;
      for (std::size_t j = 0; j < factors.size(); ++j) {
        prod *= factors[j](idx[j], h);
        if (prod == 0.0) break;
      }
      out(r, h) = prod;
    }
  }
  return out;
}

Matrix RandomBinaryMatrix(std::size_t rows, std::size_t cols,
                          util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    }
  }
  return m;
}

}  // namespace ifsketch::linalg
