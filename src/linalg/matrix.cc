#include "linalg/matrix.h"

#include <cmath>

#include "util/check.h"

namespace ifsketch::linalg {

Matrix Matrix::Identity(std::size_t order) {
  Matrix m(order, order);
  for (std::size_t i = 0; i < order; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  IFSKETCH_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::MultiplyVec(const Vector& v) const {
  IFSKETCH_CHECK_EQ(cols_, v.size());
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  IFSKETCH_CHECK_EQ(rows_, other.rows_);
  IFSKETCH_CHECK_EQ(cols_, other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

double Norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double Norm1(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += std::fabs(x);
  return acc;
}

double Dot(const Vector& a, const Vector& b) {
  IFSKETCH_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace ifsketch::linalg
