// Euclidean-section measurement (Definition 23).
//
// A subspace V of R^z is a (delta, d', z) Euclidean section when
// sqrt(z)*||x||_2 >= ||x||_1 >= delta*sqrt(z)*||x||_2 for all x in V.
// The range of the Hadamard-product matrix must be such a section for
// De's L1 decoding to tolerate "accurate on average" answers (Lemma 24).
// The exact minimal ratio over a subspace is NP-hard in general; we
// measure the empirical minimum over many random directions, which is the
// quantity the experiments track (documented substitution in DESIGN.md).
#ifndef IFSKETCH_LINALG_EUCLIDEAN_H_
#define IFSKETCH_LINALG_EUCLIDEAN_H_

#include "linalg/matrix.h"
#include "util/random.h"

namespace ifsketch::linalg {

/// Summary of sampled section ratios ||Ax||_1 / (sqrt(z) ||Ax||_2).
struct SectionEstimate {
  double min_ratio = 1.0;   ///< Empirical delta.
  double mean_ratio = 0.0;
  std::size_t samples = 0;
};

/// Samples `samples` Gaussian directions x and reports the distribution
/// of ||Ax||_1 / (sqrt(z) ||Ax||_2) over the range of A (z = A.rows()).
SectionEstimate EstimateSectionRatio(const Matrix& a, std::size_t samples,
                                     util::Rng& rng);

}  // namespace ifsketch::linalg

#endif  // IFSKETCH_LINALG_EUCLIDEAN_H_
