// Hadamard (row-wise tensor / Khatri-Rao) products of matrices.
//
// Definition 22 of the paper: for A_1..A_s with A_j of shape l_j x n, the
// Hadamard product A has shape (l_1*...*l_s) x n with
// A[(i_1..i_s), h] = prod_j A_j[i_j, h]. When the A_j are the attribute
// columns of a random database, A is exactly the matrix mapping the secret
// column to the vector of k-itemset frequency answers (KRSU / De); Lemma
// 26 (Rudelson) says its smallest singular value is Omega(sqrt(d^{s})).
#ifndef IFSKETCH_LINALG_PRODUCTS_H_
#define IFSKETCH_LINALG_PRODUCTS_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/random.h"

namespace ifsketch::linalg {

/// The Hadamard product of the given matrices (all with equal column
/// count n). Result row order is lexicographic in the index tuple
/// (i_1, ..., i_s).
Matrix HadamardProduct(const std::vector<Matrix>& factors);

/// A d x n matrix of independent unbiased {0,1} entries (the distribution
/// nu of Lemma 26).
Matrix RandomBinaryMatrix(std::size_t rows, std::size_t cols,
                          util::Rng& rng);

}  // namespace ifsketch::linalg

#endif  // IFSKETCH_LINALG_PRODUCTS_H_
