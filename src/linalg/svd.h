// Singular value decomposition via one-sided Jacobi rotation.
//
// Provides the two quantities the Theorem 16 pipeline needs: the full
// singular spectrum of the Hadamard-product query matrix (Lemma 26's
// sigma_min = Omega(sqrt(d^{k-1})) claim is measured directly), and the
// Moore-Penrose pseudo-inverse used by the KRSU-style L2 reconstruction
// baseline.
#ifndef IFSKETCH_LINALG_SVD_H_
#define IFSKETCH_LINALG_SVD_H_

#include "linalg/matrix.h"

namespace ifsketch::linalg {

/// A = U * diag(singular_values) * V^T with U (m x r), V (n x r),
/// r = min(m, n); singular values descending.
struct SvdResult {
  Matrix u;
  Vector singular_values;
  Matrix v;
};

/// One-sided Jacobi SVD. Converges for any real matrix; intended for the
/// moderate sizes used here (up to ~1000 x ~300).
SvdResult ComputeSvd(const Matrix& a);

/// Smallest singular value of A (0 if A is rank-deficient w.r.t. its
/// smaller dimension).
double SmallestSingularValue(const Matrix& a);

/// Moore-Penrose pseudo-inverse via SVD; singular values below
/// `tolerance * sigma_max` are treated as zero.
Matrix PseudoInverse(const Matrix& a, double tolerance = 1e-10);

/// Least-squares solution x minimizing ||A x - b||_2 (via pseudo-inverse).
Vector LeastSquares(const Matrix& a, const Vector& b);

}  // namespace ifsketch::linalg

#endif  // IFSKETCH_LINALG_SVD_H_
