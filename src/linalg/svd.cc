#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace ifsketch::linalg {
namespace {

constexpr int kMaxSweeps = 60;
constexpr double kConvergence = 1e-12;

}  // namespace

SvdResult ComputeSvd(const Matrix& a_in) {
  // Work on the tall orientation; transpose back at the end if needed.
  const bool transposed = a_in.rows() < a_in.cols();
  Matrix a = transposed ? a_in.Transpose() : a_in;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  Matrix v = Matrix::Identity(n);

  // One-sided Jacobi: rotate column pairs of A until all are orthogonal.
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += a(i, p) * a(i, p);
          aqq += a(i, q) * a(i, q);
          apq += a(i, p) * a(i, q);
        }
        if (std::fabs(apq) <= kConvergence * std::sqrt(app * aqq) ||
            apq == 0.0) {
          continue;
        }
        off += apq * apq;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double ap = a(i, p);
          const double aq = a(i, q);
          a(i, p) = c * ap - s * aq;
          a(i, q) = s * ap + c * aq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (off == 0.0) break;
  }

  // Singular values are column norms; U's columns are normalized columns.
  Vector sigma(n, 0.0);
  Matrix u(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += a(i, j) * a(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) u(i, j) = a(i, j) / norm;
    }
  }

  // Sort descending by singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });
  SvdResult out;
  out.singular_values.resize(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    out.singular_values[j] = sigma[src];
    for (std::size_t i = 0; i < m; ++i) out.u(i, j) = u(i, src);
    for (std::size_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }

  if (transposed) {
    std::swap(out.u, out.v);
  }
  return out;
}

double SmallestSingularValue(const Matrix& a) {
  const SvdResult svd = ComputeSvd(a);
  IFSKETCH_CHECK(!svd.singular_values.empty());
  return svd.singular_values.back();
}

Matrix PseudoInverse(const Matrix& a, double tolerance) {
  const SvdResult svd = ComputeSvd(a);
  const std::size_t r = svd.singular_values.size();
  const double cutoff =
      svd.singular_values.empty() ? 0.0 : svd.singular_values[0] * tolerance;
  // pinv(A) = V * diag(1/sigma) * U^T
  Matrix scaled_v(svd.v.rows(), r);
  for (std::size_t j = 0; j < r; ++j) {
    const double s = svd.singular_values[j];
    const double inv = s > cutoff ? 1.0 / s : 0.0;
    for (std::size_t i = 0; i < svd.v.rows(); ++i) {
      scaled_v(i, j) = svd.v(i, j) * inv;
    }
  }
  return scaled_v.Multiply(svd.u.Transpose());
}

Vector LeastSquares(const Matrix& a, const Vector& b) {
  return PseudoInverse(a).MultiplyVec(b);
}

}  // namespace ifsketch::linalg
