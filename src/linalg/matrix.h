// Dense double-precision matrices and vectors.
//
// Sized for the paper's reconstruction experiments (hundreds of rows /
// columns), not for HPC: row-major storage, straightforward loops. Used by
// the KRSU/De decoding pipeline (Theorem 16) and its diagnostics.
#ifndef IFSKETCH_LINALG_MATRIX_H_
#define IFSKETCH_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

namespace ifsketch::linalg {

using Vector = std::vector<double>;

/// A rows x cols dense matrix, row-major.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Identity of the given order.
  static Matrix Identity(std::size_t order);

  Matrix Transpose() const;

  /// Matrix product. Preconditions: cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product. Preconditions: cols() == v.size().
  Vector MultiplyVec(const Vector& v) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute entry difference to `other` (same shape).
  double MaxAbsDiff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of v.
double Norm2(const Vector& v);

/// L1 norm of v.
double Norm1(const Vector& v);

/// Dot product. Preconditions: equal sizes.
double Dot(const Vector& a, const Vector& b);

}  // namespace ifsketch::linalg

#endif  // IFSKETCH_LINALG_MATRIX_H_
