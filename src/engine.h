// ifsketch::Engine -- the library's front door.
//
// The paper studies pairs (S, Q); everything else in this repo is the
// machinery behind one such pair. Engine packages the whole lifecycle so
// callers never hardcode a concrete algorithm class:
//
//   util::Rng rng(7);
//   auto eng = ifsketch::Engine::Build(db, "SUBSAMPLE", params, rng);
//   eng->Save("basket.sk");
//   ...
//   auto again = ifsketch::Engine::Open("basket.sk");   // any IFSK file;
//   double f  = again->estimate(itemset);               // algorithm comes
//   auto fs   = again->mine(mining_options);            // from the file
//
// Build resolves the algorithm name through core::SketchRegistry (so
// "MEDIAN-BOOST(SUBSAMPLE)" works as well as the five plain built-ins),
// Open re-resolves the name stored in the file, and the query methods
// lazily materialize the estimator/indicator views. estimate_many routes
// through the batched query path (core::FrequencyEstimator::EstimateMany)
// which shares column scans across the batch; mine() batches each Apriori
// level the same way.
//
// Load paths: Open prefers the ZERO-COPY MAPPED path for arena (v2)
// files -- the file is mmap'd (util::MappedFile), validated in place
// (sketch/sketch_view.h), and the summary plus any pre-transposed column
// section are handed to the query views as borrowed, 64-byte-aligned
// words straight out of the page cache, so opening is O(header + d)
// instead of O(payload). Legacy v1 files, and callers forcing
// LoadMode::kCopied, go through the stream parser and own their bits.
// The two paths answer every query bit-identically; load_path() reports
// which one an Engine took, resident_bytes() what it pins (mapped image
// size vs owned summary bytes), and dropping the last reference to a
// mapped Engine unmaps the file.
//
// Threading contract: every query method is const and safe to call from
// any number of threads concurrently on one Engine. Lazy view
// materialization is guarded by std::call_once, and the built-in views
// are immutable once loaded. Batched queries (estimate_many,
// are_frequent, mine) additionally fan each batch out across
// util::ThreadPool::Default(); answers are bit-identical to the serial
// scalar loop at every thread count. Size the pool with
// util::ThreadPool::SetDefaultThreadCount (or the IFSKETCH_THREADS
// environment variable) from configuration code, before queries are in
// flight. Save/Build/Open are not synchronized against each other.
#ifndef IFSKETCH_ENGINE_H_
#define IFSKETCH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/itemset.h"
#include "core/sketch.h"
#include "mining/apriori.h"
#include "sketch/envelope.h"
#include "sketch/sketch_file.h"
#include "sketch/sketch_view.h"
#include "util/mapped_file.h"
#include "util/random.h"

namespace ifsketch {

/// Facade over build / save / open / query for any registered algorithm.
class Engine {
 public:
  /// How Open acquires the file's bytes.
  enum class LoadMode {
    kAuto,    ///< mapped for arena (v2) files, copied for legacy v1
    kMapped,  ///< require the zero-copy path; fail on v1 files
    kCopied,  ///< force the stream parser (works for both versions)
  };

  /// Which path an Engine's bits actually came from.
  enum class LoadPath {
    kBuilt,   ///< Build/FromFile: in-memory, never loaded from disk
    kMapped,  ///< zero-copy views over a MappedFile
    kCopied,  ///< stream-parsed into owned storage
  };

  /// Sketches `db` with the named algorithm. Returns nullopt when the
  /// registry cannot resolve `algorithm` (see KnownAlgorithms()).
  static std::optional<Engine> Build(const core::Database& db,
                                     const std::string& algorithm,
                                     const core::SketchParams& params,
                                     util::Rng& rng);

  /// Reopens a saved sketch, resolving the algorithm recorded in the
  /// file; prefers the mapped path per `mode`. Returns nullopt when the
  /// file is unreadable/malformed or its algorithm is not registered;
  /// when `error` is non-null it receives a one-line diagnostic naming
  /// the path and, for validation failures, the byte offset of the
  /// first bad field.
  static std::optional<Engine> Open(const std::string& path,
                                    LoadMode mode = LoadMode::kAuto,
                                    std::string* error = nullptr);
  static std::optional<Engine> Open(const std::string& path,
                                    std::string* error) {
    return Open(path, LoadMode::kAuto, error);
  }

  /// Adopts an already-loaded file (the in-memory equivalent of Open).
  static std::optional<Engine> FromFile(sketch::SketchFile file);

  /// Writes the sketch as an IFSK file (arena v2), atomically replacing
  /// `path` (write temp, fsync, rename). Returns false on I/O failure;
  /// the overload reports the errno/strerror detail in *error and can
  /// append the CRC32C integrity trailer for durable copies.
  bool Save(const std::string& path) const;
  bool Save(const std::string& path, std::string* error,
            sketch::SketchChecksum checksum =
                sketch::SketchChecksum::kNone) const;

  /// Names the default registry resolves, for error messages and --help.
  static std::vector<std::string> KnownAlgorithms();

  // ----------------------------------------------------------- metadata
  const std::string& algorithm() const { return file_.algorithm; }
  const core::SketchParams& params() const { return file_.params; }
  std::size_t n() const { return file_.n; }
  std::size_t d() const { return file_.d; }
  std::size_t summary_bits() const { return file_.summary.size(); }
  const sketch::SketchFile& file() const { return file_; }

  /// Which load path produced this Engine (see LoadPath).
  LoadPath load_path() const { return load_path_; }

  /// On-disk format version this Engine was loaded from
  /// (sketch::arena::kVersionLegacy / kVersionArena), or 0 when built
  /// in memory.
  std::uint16_t format_version() const { return file_.version; }

  /// Bytes this Engine pins for its summary data: the whole mapped image
  /// for the mapped path (what eviction releases back to the page
  /// cache), the owned summary payload bytes otherwise. Serving-layer
  /// byte budgets (serve::SketchPod) account in these units.
  std::size_t resident_bytes() const;

  // ------------------------------------------------------------ queries
  /// Whether this sketch can answer queries of cardinality `size`.
  /// Sample-backed algorithms answer any size; RELEASE-ANSWERS only
  /// answers exactly params().k. Querying an unsupported size is a
  /// contract violation (the views abort rather than alias into a wrong
  /// answer), so gate on this for user-supplied query sizes.
  bool supports_query_size(std::size_t size) const;

  /// Q(S, T) as a frequency estimate. Requires an estimator-flavored
  /// sketch (params().answer == Answer::kEstimator) and a supported
  /// query size.
  double estimate(const core::Itemset& t) const;

  /// Batched estimate; answers[i] corresponds to ts[i]. Same requirement
  /// and bit-identical to per-query estimate() calls.
  void estimate_many(const std::vector<core::Itemset>& ts,
                     std::vector<double>* answers) const;

  /// Q(S, T) as a threshold bit (works for both answer flavors).
  bool is_frequent(const core::Itemset& t) const;

  /// Batched is_frequent.
  void are_frequent(const std::vector<core::Itemset>& ts,
                    std::vector<bool>* answers) const;

  /// Apriori over the sketch, batching each candidate level through
  /// estimate_many. Requires an estimator-flavored sketch that supports
  /// every query size 1..options.max_size (see supports_query_size).
  std::vector<mining::FrequentItemset> mine(
      const mining::AprioriOptions& options) const;

  // --------------------------------------------------------------- info
  /// The Theorem 12 envelope for this sketch's shape and parameters.
  sketch::EnvelopeReport envelope() const;

  /// Multi-line human-readable report: algorithm, parameters, shape,
  /// summary size, file format + load path, and the envelope comparison.
  std::string info() const;

 private:
  // Lazily-materialized query views plus their once-flags. Heap-held so
  // Engine stays movable (std::once_flag is neither movable nor
  // copyable); shared so copies of an Engine share the deserialized
  // views (they are pure functions of the immutable file contents).
  struct ViewCache {
    std::once_flag estimator_once;
    std::once_flag indicator_once;
    std::shared_ptr<const core::FrequencyEstimator> estimator;
    std::shared_ptr<const core::FrequencyIndicator> indicator;
  };

  Engine(sketch::SketchFile file,
         std::shared_ptr<const core::SketchAlgorithm> algo)
      : file_(std::move(file)),
        algo_(std::move(algo)),
        views_(std::make_shared<ViewCache>()) {}

  /// Resolve + payload-size validation shared by FromFile and both Open
  /// paths; `error` (optional) receives the reason on nullopt.
  static std::optional<Engine> FromParts(sketch::SketchFile file,
                                         LoadPath load_path,
                                         std::string* error);

  const core::FrequencyEstimator& estimator() const;
  const core::FrequencyIndicator& indicator() const;

  /// The borrowed column store over the mapped column section; only
  /// callable when columns_ is set.
  core::ColumnStore BorrowedColumns() const;

  sketch::SketchFile file_;
  std::shared_ptr<const core::SketchAlgorithm> algo_;
  // Mapped-path state. `mapping_` keeps the bytes behind file_.summary's
  // view (and columns_) alive; it is declared before views_ so that when
  // the last copy of an Engine dies, the cached views are destroyed
  // before the mapping they may point into.
  std::shared_ptr<const util::MappedFile> mapping_;
  std::optional<sketch::ArenaColumns> columns_;
  LoadPath load_path_ = LoadPath::kBuilt;
  // Query views are deserialized on first use (std::call_once, so
  // concurrent first queries are safe) and cached.
  std::shared_ptr<ViewCache> views_;
};

}  // namespace ifsketch

#endif  // IFSKETCH_ENGINE_H_
