#include "comm/one_way.h"

#include <algorithm>

namespace ifsketch::comm {

IndexGameResult PlayIndexGame(const OneWayIndexProtocol& protocol,
                              std::size_t trials, util::Rng& rng) {
  IndexGameResult result;
  const std::size_t n = protocol.universe();
  for (std::size_t t = 0; t < trials; ++t) {
    const util::BitVector x = rng.RandomBits(n);
    const std::size_t y = rng.UniformInt(n);
    const std::uint64_t seed = rng.Next();
    const util::BitVector message = protocol.AliceMessage(x, seed);
    result.max_message_bits = std::max(result.max_message_bits,
                                       message.size());
    const bool out = protocol.BobOutput(message, y, seed);
    ++result.trials;
    if (out == x.Get(y)) ++result.successes;
  }
  return result;
}

}  // namespace ifsketch::comm
