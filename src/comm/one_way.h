// One-way randomized communication games.
//
// Theorem 14 reduces the INDEX problem to For-Each indicator sketching:
// Alice holds x in {0,1}^N, Bob holds an index y, Alice sends one message
// and Bob must output x_y with probability >= 2/3. Since INDEX requires
// Omega(N) communication [Abl96], any protocol built from a sketch
// transfers the bound to the sketch size. This header defines the generic
// game; the sketch-based protocol lives in lowerbound/.
#ifndef IFSKETCH_COMM_ONE_WAY_H_
#define IFSKETCH_COMM_ONE_WAY_H_

#include <cstdint>

#include "util/bitvector.h"
#include "util/random.h"

namespace ifsketch::comm {

/// A one-way protocol for INDEX over {0,1}^N. Alice and Bob share the
/// public random seed.
class OneWayIndexProtocol {
 public:
  virtual ~OneWayIndexProtocol() = default;

  /// Universe size N.
  virtual std::size_t universe() const = 0;

  /// Alice's message on input x (|x| == universe()).
  virtual util::BitVector AliceMessage(const util::BitVector& x,
                                       std::uint64_t shared_seed) const = 0;

  /// Bob's output bit on his index y given Alice's message.
  virtual bool BobOutput(const util::BitVector& message, std::size_t y,
                         std::uint64_t shared_seed) const = 0;
};

/// Result of playing the game repeatedly with random inputs.
struct IndexGameResult {
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t max_message_bits = 0;
  double SuccessRate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};

/// Plays `trials` rounds with uniformly random (x, y) and fresh shared
/// seeds, recording the success rate and the largest message sent.
IndexGameResult PlayIndexGame(const OneWayIndexProtocol& protocol,
                              std::size_t trials, util::Rng& rng);

}  // namespace ifsketch::comm

#endif  // IFSKETCH_COMM_ONE_WAY_H_
