// Condensed representations of frequent itemsets (§1.1.1).
//
// The paper motivates sketches by the blow-up of exact representations:
// a frequent itemset of cardinality c makes all 2^c subsets frequent, so
// "all frequent itemsets" is worst-case exponential while the maximal and
// closed families can stay small (yet are themselves exponential in the
// worst case, citing the Calders-Goethals survey). These helpers compute
// both condensed families from a mined result set, and reconstruct the
// full family from the maximal one -- the trade the paper contrasts
// sketches against.
#ifndef IFSKETCH_MINING_CONDENSED_H_
#define IFSKETCH_MINING_CONDENSED_H_

#include <vector>

#include "core/database.h"
#include "mining/apriori.h"

namespace ifsketch::mining {

/// Itemsets from `frequent` with no frequent proper superset in the list.
/// Input must be downward-closed (as produced by MineFrequentItemsets).
std::vector<FrequentItemset> MaximalItemsets(
    const std::vector<FrequentItemset>& frequent);

/// Itemsets from `frequent` that are closed: no proper superset in the
/// list has the same frequency.
std::vector<FrequentItemset> ClosedItemsets(
    const std::vector<FrequentItemset>& frequent);

/// Expands a maximal family back into every frequent itemset (without
/// frequencies -- exactly the information loss the closed family avoids).
/// Itemsets are returned deduplicated, sorted by (size, colex rank).
std::vector<core::Itemset> ExpandMaximal(
    const std::vector<FrequentItemset>& maximal);

/// The closure of an itemset in a database: the set of all attributes
/// shared by every supporting row (equals `t` iff `t` is closed).
/// Precondition: t has at least one supporting row.
core::Itemset Closure(const core::Database& db, const core::Itemset& t);

}  // namespace ifsketch::mining

#endif  // IFSKETCH_MINING_CONDENSED_H_
