#include "mining/biclique.h"

#include "util/check.h"

namespace ifsketch::mining {

Biclique BicliqueFromItemset(const core::Database& db,
                             const core::Itemset& t) {
  Biclique b;
  b.attributes = t.Attributes();
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    if (t.ContainedIn(db.Row(i))) b.rows.push_back(i);
  }
  return b;
}

bool IsBiclique(const core::Database& db, const Biclique& b) {
  for (std::size_t i : b.rows) {
    for (std::size_t j : b.attributes) {
      if (!db.Get(i, j)) return false;
    }
  }
  return true;
}

Biclique MaxBalancedBicliqueExact(const core::Database& db) {
  const std::size_t d = db.num_columns();
  IFSKETCH_CHECK_LE(d, 22u);  // 2^d enumeration guard
  Biclique best;
  const std::size_t subsets = std::size_t{1} << d;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    core::Itemset t(d);
    for (std::size_t j = 0; j < d; ++j) {
      if ((mask >> j) & 1u) t.Add(j);
    }
    Biclique candidate = BicliqueFromItemset(db, t);
    if (candidate.BalancedSize() > best.BalancedSize() ||
        (candidate.BalancedSize() == best.BalancedSize() &&
         candidate.attributes.size() > best.attributes.size())) {
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace ifsketch::mining
