#include "mining/condensed.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::mining {
namespace {

bool IsProperSubset(const core::Itemset& small, const core::Itemset& big) {
  return small.size() < big.size() &&
         big.indicator().Contains(small.indicator());
}

}  // namespace

std::vector<FrequentItemset> MaximalItemsets(
    const std::vector<FrequentItemset>& frequent) {
  std::vector<FrequentItemset> out;
  for (const auto& candidate : frequent) {
    bool has_superset = false;
    for (const auto& other : frequent) {
      if (IsProperSubset(candidate.itemset, other.itemset)) {
        has_superset = true;
        break;
      }
    }
    if (!has_superset) out.push_back(candidate);
  }
  return out;
}

std::vector<FrequentItemset> ClosedItemsets(
    const std::vector<FrequentItemset>& frequent) {
  std::vector<FrequentItemset> out;
  for (const auto& candidate : frequent) {
    bool has_equal_superset = false;
    for (const auto& other : frequent) {
      if (IsProperSubset(candidate.itemset, other.itemset) &&
          other.frequency == candidate.frequency) {
        has_equal_superset = true;
        break;
      }
    }
    if (!has_equal_superset) out.push_back(candidate);
  }
  return out;
}

std::vector<core::Itemset> ExpandMaximal(
    const std::vector<FrequentItemset>& maximal) {
  std::set<std::string> seen;
  std::vector<core::Itemset> out;
  for (const auto& m : maximal) {
    const std::vector<std::size_t> attrs = m.itemset.Attributes();
    const std::size_t d = m.itemset.universe();
    // Every nonempty subset of each maximal itemset.
    const std::size_t subsets = std::size_t{1} << attrs.size();
    IFSKETCH_CHECK_LE(attrs.size(), 24u);  // guard the expansion
    for (std::size_t mask = 1; mask < subsets; ++mask) {
      core::Itemset sub(d);
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if ((mask >> i) & 1u) sub.Add(attrs[i]);
      }
      const std::string key = sub.indicator().ToString();
      if (seen.insert(key).second) out.push_back(std::move(sub));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const core::Itemset& a, const core::Itemset& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return util::RankSubset(a.Attributes(), a.universe()) <
                     util::RankSubset(b.Attributes(), b.universe());
            });
  return out;
}

core::Itemset Closure(const core::Database& db, const core::Itemset& t) {
  util::BitVector common(db.num_columns());
  for (std::size_t a = 0; a < db.num_columns(); ++a) common.Set(a, true);
  bool any = false;
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    if (t.ContainedIn(db.Row(i))) {
      common &= db.Row(i);
      any = true;
    }
  }
  IFSKETCH_CHECK(any);
  return core::Itemset::FromIndicator(std::move(common));
}

}  // namespace ifsketch::mining
