// FP-Growth frequent-itemset mining.
//
// A second, independent miner (Han et al.'s pattern-growth method): the
// database is compressed into an FP-tree (prefix tree over transactions
// with items in descending support order, plus per-item node chains) and
// frequent itemsets are enumerated by recursive conditional-tree
// projection -- no candidate generation and at most two database scans.
// Used both as a faster engine for the examples and as an independent
// oracle to cross-check Apriori in tests.
#ifndef IFSKETCH_MINING_FPGROWTH_H_
#define IFSKETCH_MINING_FPGROWTH_H_

#include <vector>

#include "core/database.h"
#include "mining/apriori.h"

namespace ifsketch::mining {

/// Mines frequent itemsets with FP-Growth. Returns the same family as
/// MineDatabase(db, options) (ordering may differ; sorted by
/// (size, colex rank) for determinism).
std::vector<FrequentItemset> FpGrowth(const core::Database& db,
                                      const AprioriOptions& options);

}  // namespace ifsketch::mining

#endif  // IFSKETCH_MINING_FPGROWTH_H_
