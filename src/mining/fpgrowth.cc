#include "mining/fpgrowth.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "util/check.h"
#include "util/combinatorics.h"

namespace ifsketch::mining {
namespace {

struct FpNode {
  std::size_t item = 0;           // attribute index
  std::uint64_t count = 0;
  FpNode* parent = nullptr;
  FpNode* next_same_item = nullptr;  // header-table chain
  std::map<std::size_t, std::unique_ptr<FpNode>> children;
};

// An FP-tree over weighted transactions (weights support the conditional
// trees, where each path carries its accumulated count).
class FpTree {
 public:
  explicit FpTree(std::uint64_t min_count) : min_count_(min_count) {}

  // One pass to count item supports; items below min_count are dropped.
  void CountItems(const std::vector<std::pair<std::vector<std::size_t>,
                                              std::uint64_t>>& txns) {
    for (const auto& [items, weight] : txns) {
      for (std::size_t item : items) item_count_[item] += weight;
    }
    for (auto it = item_count_.begin(); it != item_count_.end();) {
      if (it->second < min_count_) {
        it = item_count_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Second pass: insert each transaction's surviving items in descending
  // (support, then ascending item) order.
  void Insert(const std::vector<std::size_t>& items, std::uint64_t weight) {
    std::vector<std::size_t> kept;
    for (std::size_t item : items) {
      if (item_count_.count(item) > 0) kept.push_back(item);
    }
    std::sort(kept.begin(), kept.end(), [&](std::size_t a, std::size_t b) {
      const std::uint64_t ca = item_count_.at(a);
      const std::uint64_t cb = item_count_.at(b);
      if (ca != cb) return ca > cb;
      return a < b;
    });
    FpNode* node = &root_;
    for (std::size_t item : kept) {
      auto it = node->children.find(item);
      if (it == node->children.end()) {
        auto child = std::make_unique<FpNode>();
        child->item = item;
        child->parent = node;
        child->next_same_item = header_[item];
        header_[item] = child.get();
        it = node->children.emplace(item, std::move(child)).first;
      }
      it->second->count += weight;
      node = it->second.get();
    }
  }

  // Items present in the tree, ascending by support (the mining order).
  std::vector<std::size_t> ItemsAscendingSupport() const {
    std::vector<std::size_t> items;
    items.reserve(item_count_.size());
    for (const auto& [item, count] : item_count_) items.push_back(item);
    std::sort(items.begin(), items.end(),
              [&](std::size_t a, std::size_t b) {
                const std::uint64_t ca = item_count_.at(a);
                const std::uint64_t cb = item_count_.at(b);
                if (ca != cb) return ca < cb;
                return a > b;
              });
    return items;
  }

  std::uint64_t ItemSupport(std::size_t item) const {
    const auto it = item_count_.find(item);
    return it == item_count_.end() ? 0 : it->second;
  }

  // The conditional pattern base of `item`: for every tree occurrence,
  // the root path above it with that occurrence's count.
  std::vector<std::pair<std::vector<std::size_t>, std::uint64_t>>
  ConditionalBase(std::size_t item) const {
    std::vector<std::pair<std::vector<std::size_t>, std::uint64_t>> base;
    const auto it = header_.find(item);
    for (FpNode* node = it == header_.end() ? nullptr : it->second;
         node != nullptr; node = node->next_same_item) {
      std::vector<std::size_t> path;
      for (FpNode* up = node->parent; up != nullptr && up->parent != nullptr;
           up = up->parent) {
        path.push_back(up->item);
      }
      std::reverse(path.begin(), path.end());
      if (!path.empty()) base.emplace_back(std::move(path), node->count);
    }
    return base;
  }

 private:
  std::uint64_t min_count_;
  FpNode root_;
  std::map<std::size_t, std::uint64_t> item_count_;
  std::map<std::size_t, FpNode*> header_;
};

void MineTree(
    const std::vector<std::pair<std::vector<std::size_t>, std::uint64_t>>&
        txns,
    std::uint64_t min_count, std::uint64_t total_rows,
    const std::vector<std::size_t>& prefix, std::size_t max_size,
    std::size_t max_results, std::vector<FrequentItemset>& out,
    std::size_t d) {
  if (prefix.size() >= max_size || out.size() >= max_results) return;
  FpTree tree(min_count);
  tree.CountItems(txns);
  for (const auto& [items, weight] : txns) tree.Insert(items, weight);
  for (std::size_t item : tree.ItemsAscendingSupport()) {
    if (out.size() >= max_results) return;
    std::vector<std::size_t> extended = prefix;
    extended.push_back(item);
    std::sort(extended.begin(), extended.end());
    out.push_back(
        {core::Itemset(d, extended),
         static_cast<double>(tree.ItemSupport(item)) /
             static_cast<double>(total_rows)});
    const auto base = tree.ConditionalBase(item);
    if (!base.empty()) {
      MineTree(base, min_count, total_rows, extended, max_size,
               max_results, out, d);
    }
  }
}

}  // namespace

std::vector<FrequentItemset> FpGrowth(const core::Database& db,
                                      const AprioriOptions& options) {
  std::vector<FrequentItemset> out;
  if (db.num_rows() == 0) return out;
  const auto min_count = static_cast<std::uint64_t>(
      std::ceil(options.min_frequency * static_cast<double>(db.num_rows()) -
                1e-9));
  std::vector<std::pair<std::vector<std::size_t>, std::uint64_t>> txns;
  txns.reserve(db.num_rows());
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    txns.emplace_back(db.Row(i).SetBits(), 1);
  }
  MineTree(txns, std::max<std::uint64_t>(min_count, 1), db.num_rows(), {},
           options.max_size, options.max_results, out, db.num_columns());
  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return util::RankSubset(a.itemset.Attributes(),
                                      a.itemset.universe()) <
                     util::RankSubset(b.itemset.Attributes(),
                                      b.itemset.universe());
            });
  return out;
}

}  // namespace ifsketch::mining
