#include "mining/apriori.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace ifsketch::mining {
namespace {

using Attrs = std::vector<std::size_t>;

// Joins two sorted k-itemsets sharing their first k-1 elements into a
// (k+1)-candidate; returns empty when they don't join.
Attrs Join(const Attrs& a, const Attrs& b) {
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    if (a[i] != b[i]) return {};
  }
  if (a.back() >= b.back()) return {};
  Attrs out = a;
  out.push_back(b.back());
  return out;
}

// Downward closure: every (|c|-1)-subset of the candidate must be in the
// previous frequent level.
bool AllSubsetsFrequent(const Attrs& candidate,
                        const std::set<Attrs>& previous) {
  Attrs sub(candidate.begin(), candidate.end() - 1);
  for (std::size_t drop = 0; drop < candidate.size(); ++drop) {
    sub.clear();
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != drop) sub.push_back(candidate[i]);
    }
    if (previous.find(sub) == previous.end()) return false;
  }
  return true;
}

}  // namespace

std::vector<FrequentItemset> MineFrequentItemsets(
    std::size_t d, const FrequencyFn& frequency,
    const AprioriOptions& options) {
  std::vector<FrequentItemset> results;
  // Level 1.
  std::vector<Attrs> level;
  for (std::size_t a = 0; a < d; ++a) {
    const core::Itemset t(d, {a});
    const double f = frequency(t);
    if (f >= options.min_frequency) {
      level.push_back({a});
      results.push_back({t, f});
    }
  }
  // Levels 2..max_size.
  for (std::size_t size = 2;
       size <= options.max_size && !level.empty() &&
       results.size() < options.max_results;
       ++size) {
    const std::set<Attrs> previous(level.begin(), level.end());
    std::vector<Attrs> next;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        Attrs candidate = Join(level[i], level[j]);
        if (candidate.empty()) continue;
        if (!AllSubsetsFrequent(candidate, previous)) continue;
        const core::Itemset t(d, candidate);
        const double f = frequency(t);
        if (f >= options.min_frequency) {
          next.push_back(std::move(candidate));
          results.push_back({t, f});
          if (results.size() >= options.max_results) break;
        }
      }
      if (results.size() >= options.max_results) break;
    }
    level = std::move(next);
  }
  return results;
}

std::vector<FrequentItemset> MineFrequentItemsetsBatched(
    std::size_t d, const BatchFrequencyFn& frequency,
    const AprioriOptions& options) {
  std::vector<FrequentItemset> results;
  std::vector<double> answers;

  // Level 1: every singleton in one batch.
  std::vector<core::Itemset> queries;
  queries.reserve(d);
  for (std::size_t a = 0; a < d; ++a) queries.emplace_back(d, Attrs{a});
  frequency(queries, &answers);
  std::vector<Attrs> level;
  for (std::size_t a = 0; a < d; ++a) {
    if (answers[a] >= options.min_frequency) {
      level.push_back({a});
      results.push_back({queries[a], answers[a]});
    }
  }

  // Levels 2..max_size: generate all pruned candidates, then one batch.
  // `level` is kept sorted, so the i-major join order below emits each
  // level's candidates grouped by their (size-1)-prefix: every candidate
  // joined from level[i] is level[i] + {x} with x > level[i].back(), and
  // consecutive candidates share the prefix level[i]. The batched
  // evaluators exploit exactly this adjacency (ColumnStore::SupportCounts
  // prefix sharing) to answer a run of siblings with ~one column AND
  // each instead of size-1.
  for (std::size_t size = 2;
       size <= options.max_size && !level.empty() &&
       results.size() < options.max_results;
       ++size) {
    std::sort(level.begin(), level.end());
    const std::set<Attrs> previous(level.begin(), level.end());
    std::vector<Attrs> candidates;
    queries.clear();
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        Attrs candidate = Join(level[i], level[j]);
        if (candidate.empty()) continue;
        if (!AllSubsetsFrequent(candidate, previous)) continue;
        queries.emplace_back(d, candidate);
        candidates.push_back(std::move(candidate));
      }
    }
    frequency(queries, &answers);
    std::vector<Attrs> next;
    for (std::size_t i = 0;
         i < candidates.size() && results.size() < options.max_results; ++i) {
      if (answers[i] >= options.min_frequency) {
        results.push_back({queries[i], answers[i]});
        next.push_back(std::move(candidates[i]));
      }
    }
    level = std::move(next);
  }
  return results;
}

std::vector<FrequentItemset> MineDatabase(const core::Database& db,
                                          const AprioriOptions& options) {
  return MineFrequentItemsets(
      db.num_columns(),
      [&db](const core::Itemset& t) { return db.Frequency(t); }, options);
}

std::vector<FrequentItemset> MineWithEstimator(
    const core::FrequencyEstimator& estimator, std::size_t d,
    const AprioriOptions& options) {
  return MineFrequentItemsets(
      d,
      [&estimator](const core::Itemset& t) {
        return estimator.EstimateFrequency(t);
      },
      options);
}

std::vector<FrequentItemset> MineWithEstimatorBatched(
    const core::FrequencyEstimator& estimator, std::size_t d,
    const AprioriOptions& options) {
  return MineFrequentItemsetsBatched(
      d,
      [&estimator](const std::vector<core::Itemset>& ts,
                   std::vector<double>* answers) {
        estimator.EstimateMany(ts, answers);
      },
      options);
}

std::vector<AssociationRule> ExtractRules(
    const std::vector<FrequentItemset>& itemsets,
    const FrequencyFn& frequency, double min_confidence) {
  std::vector<AssociationRule> rules;
  for (const auto& fi : itemsets) {
    const Attrs attrs = fi.itemset.Attributes();
    if (attrs.size() < 2) continue;
    const std::size_t d = fi.itemset.universe();
    for (std::size_t out = 0; out < attrs.size(); ++out) {
      Attrs lhs_attrs;
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (i != out) lhs_attrs.push_back(attrs[i]);
      }
      const core::Itemset lhs(d, lhs_attrs);
      const double f_lhs = frequency(lhs);
      if (f_lhs <= 0.0) continue;
      const double confidence = fi.frequency / f_lhs;
      if (confidence >= min_confidence) {
        rules.push_back(
            {lhs, core::Itemset(d, {attrs[out]}), fi.frequency, confidence});
      }
    }
  }
  return rules;
}

MiningQuality CompareMinedSets(const std::vector<FrequentItemset>& reference,
                               const std::vector<FrequentItemset>& mined) {
  std::set<std::string> ref_keys;
  for (const auto& r : reference) {
    ref_keys.insert(r.itemset.indicator().ToString());
  }
  MiningQuality q;
  q.reference_count = reference.size();
  q.mined_count = mined.size();
  for (const auto& m : mined) {
    if (ref_keys.count(m.itemset.indicator().ToString()) > 0) {
      ++q.intersection;
    }
  }
  return q;
}

}  // namespace ifsketch::mining
