// Apriori frequent-itemset mining over databases or sketches.
//
// The paper's §1.1 motivation: an analyst keeps an itemset sketch instead
// of the database and runs mining algorithms against it. This miner is
// the classic level-wise Apriori [AIS93]: level k candidates are joins of
// frequent (k-1)-itemsets sharing a (k-2)-prefix, pruned by the downward
// closure property, with supports evaluated either exactly on a Database
// or approximately through any FrequencyEstimator (e.g. a SUBSAMPLE
// summary) -- which is exactly how a sketch replaces repeated scans.
#ifndef IFSKETCH_MINING_APRIORI_H_
#define IFSKETCH_MINING_APRIORI_H_

#include <functional>
#include <vector>

#include "core/database.h"
#include "core/sketch.h"

namespace ifsketch::mining {

/// A mined itemset with its (possibly estimated) frequency.
struct FrequentItemset {
  core::Itemset itemset;
  double frequency = 0.0;
};

/// Mining configuration.
struct AprioriOptions {
  double min_frequency = 0.1;   ///< Support threshold.
  std::size_t max_size = 4;     ///< Largest itemset cardinality mined.
  std::size_t max_results = 100000;  ///< Safety cap on output size.
};

/// Frequency oracle abstraction: exact (database) or sketched.
using FrequencyFn = std::function<double(const core::Itemset&)>;

/// Batched frequency oracle: answers[i] = frequency of ts[i]. Must agree
/// with the scalar oracle query by query (see
/// core::FrequencyEstimator::EstimateMany).
using BatchFrequencyFn = std::function<void(const std::vector<core::Itemset>&,
                                            std::vector<double>*)>;

/// Runs Apriori against an arbitrary frequency oracle over universe d.
/// Results are sorted by (size, colex rank of attributes).
std::vector<FrequentItemset> MineFrequentItemsets(
    std::size_t d, const FrequencyFn& frequency,
    const AprioriOptions& options);

/// Level-batched Apriori: generates each level's surviving candidates
/// first, then evaluates them through one `frequency` call. Candidates
/// are emitted grouped by their (size-1)-prefix, so batch evaluators
/// that share prefix AND-accumulators across adjacent sibling queries
/// (ColumnStore::SupportCounts) answer a level of C candidates with
/// ~one column AND per candidate instead of size-1. Mines the same
/// itemsets as MineFrequentItemsets over an agreeing scalar oracle.
std::vector<FrequentItemset> MineFrequentItemsetsBatched(
    std::size_t d, const BatchFrequencyFn& frequency,
    const AprioriOptions& options);

/// Convenience: exact mining on a database.
std::vector<FrequentItemset> MineDatabase(const core::Database& db,
                                          const AprioriOptions& options);

/// Convenience: approximate mining through an estimator summary.
std::vector<FrequentItemset> MineWithEstimator(
    const core::FrequencyEstimator& estimator, std::size_t d,
    const AprioriOptions& options);

/// Like MineWithEstimator but through the estimator's batched path
/// (one EstimateMany call per Apriori level).
std::vector<FrequentItemset> MineWithEstimatorBatched(
    const core::FrequencyEstimator& estimator, std::size_t d,
    const AprioriOptions& options);

/// An association rule lhs => rhs.
struct AssociationRule {
  core::Itemset lhs;
  core::Itemset rhs;
  double support = 0.0;     ///< Frequency of lhs + rhs.
  double confidence = 0.0;  ///< support / frequency(lhs).
};

/// Extracts single-consequent rules from mined itemsets with confidence
/// at least `min_confidence` (Mannila-Toivonen style rule identification
/// on an eps-adequate representation).
std::vector<AssociationRule> ExtractRules(
    const std::vector<FrequentItemset>& itemsets,
    const FrequencyFn& frequency, double min_confidence);

/// Precision/recall of mined itemsets against a reference set (compared
/// as attribute sets, frequencies ignored).
struct MiningQuality {
  std::size_t reference_count = 0;
  std::size_t mined_count = 0;
  std::size_t intersection = 0;
  double Precision() const {
    return mined_count == 0 ? 1.0
                            : static_cast<double>(intersection) /
                                  static_cast<double>(mined_count);
  }
  double Recall() const {
    return reference_count == 0 ? 1.0
                                : static_cast<double>(intersection) /
                                      static_cast<double>(reference_count);
  }
};

MiningQuality CompareMinedSets(const std::vector<FrequentItemset>& reference,
                               const std::vector<FrequentItemset>& mined);

}  // namespace ifsketch::mining

#endif  // IFSKETCH_MINING_APRIORI_H_
