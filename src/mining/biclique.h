// The frequent-itemset <-> balanced-biclique correspondence (§1.1.1).
//
// View D as a bipartite graph: rows on one side, attributes on the
// other, an edge when D(i,j)=1. An itemset of cardinality c and support
// count s induces a complete bipartite subgraph with s rows and c
// attributes, and conversely. The paper uses this to show that finding a
// frequent itemset of approximately maximal size is NP-hard (via hardness
// of Balanced Complete Bipartite Subgraph). This module implements both
// directions of the correspondence plus an exact (exponential-time)
// balanced-biclique search usable at test scale.
#ifndef IFSKETCH_MINING_BICLIQUE_H_
#define IFSKETCH_MINING_BICLIQUE_H_

#include <vector>

#include "core/database.h"

namespace ifsketch::mining {

/// A complete bipartite subgraph of the row/attribute graph.
struct Biclique {
  std::vector<std::size_t> rows;        ///< Row indices (ascending).
  std::vector<std::size_t> attributes;  ///< Attribute indices (ascending).
  /// Balanced size: min(|rows|, |attributes|).
  std::size_t BalancedSize() const {
    return rows.size() < attributes.size() ? rows.size()
                                           : attributes.size();
  }
};

/// The biclique induced by an itemset: its attributes x its supporting
/// rows. (The paper's forward direction.)
Biclique BicliqueFromItemset(const core::Database& db,
                             const core::Itemset& t);

/// True iff every (row, attribute) pair of `b` is an edge (D(i,j)=1).
bool IsBiclique(const core::Database& db, const Biclique& b);

/// Exact maximum *balanced* biclique by exhaustive search over attribute
/// subsets (O(2^d * n d)); intended for d <= ~20. Returns a biclique
/// maximizing min(|rows|, |attributes|); ties broken toward more
/// attributes.
Biclique MaxBalancedBicliqueExact(const core::Database& db);

}  // namespace ifsketch::mining

#endif  // IFSKETCH_MINING_BICLIQUE_H_
