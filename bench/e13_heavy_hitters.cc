// E13 -- §1.2's contrast: frequent ITEMS are easy, frequent ITEMSETS are
// not.
//
// For the heavy-hitters problem (k=1 indicator queries over a stream of
// item occurrences), the deterministic Misra-Gries summary needs only
// O(1/eps) counters -- far below the Omega(d/eps) itemset bound -- and
// beats row sampling. The table makes the separation concrete: summary
// sizes and answer quality of Misra-Gries vs SUBSAMPLE (k=1) vs the
// Theorem 13 itemset floor, on the same data.

#include <cmath>
#include <cstdio>

#include "data/generators.h"
#include "sketch/subsample.h"
#include "stream/misra_gries.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void Contrast() {
  util::Rng rng(20);
  const std::size_t d = 512;
  const std::size_t n = 50000;
  const core::Database db =
      data::PowerLawBaskets(n, d, 1.1, 0.7, 0, 0, 0.0, rng);

  util::Table table(
      "items vs itemsets: summary size for eps-threshold answers "
      "(d=512, n=50000)",
      {"eps", "Misra-Gries bits (items)", "SUBSAMPLE bits (k=1)",
       "Omega(d/eps) itemset floor", "MG correct HH",
       "MG false positives"});
  for (const double eps : {0.1, 0.05, 0.02, 0.01}) {
    // --- Misra-Gries over the item stream.
    const auto counters =
        static_cast<std::size_t>(std::ceil(2.0 / eps));  // error eps*N/2
    stream::MisraGries mg(counters);
    std::uint64_t total_items = 0;
    for (std::size_t i = 0; i < n; ++i) {
      mg.ObserveRow(db.Row(i));
      total_items += db.Row(i).Count();
    }
    // Item-level heavy hitters at threshold eps (fraction of rows).
    const auto row_threshold =
        static_cast<std::uint64_t>(eps * static_cast<double>(n));
    std::size_t truth_count = 0;
    for (std::size_t j = 0; j < d; ++j) {
      if (db.SupportCount(core::Itemset(d, {j})) >= row_threshold) {
        ++truth_count;
      }
    }
    // MG candidates at threshold - MaxError (the standard two-sided use).
    const std::uint64_t cut =
        row_threshold > mg.MaxError() ? row_threshold - mg.MaxError() : 0;
    std::size_t correct = 0, false_pos = 0;
    for (std::size_t item : mg.HeavyHitters(cut)) {
      if (item < d &&
          db.SupportCount(core::Itemset(d, {item})) >= row_threshold) {
        ++correct;
      } else {
        ++false_pos;
      }
    }

    // --- SUBSAMPLE at k=1 (the sampling alternative for items).
    core::SketchParams p;
    p.k = 1;
    p.eps = eps;
    p.delta = 0.05;
    p.scope = core::Scope::kForAll;
    p.answer = core::Answer::kIndicator;
    sketch::SubsampleSketch sub;
    const std::size_t sub_bits = sub.PredictedSizeBits(n, d, p);

    char hh[32];
    std::snprintf(hh, sizeof(hh), "%zu/%zu", correct, truth_count);
    table.AddRow({util::Table::Fmt(eps),
                  util::Table::Fmt(std::uint64_t{mg.SizeBits()}),
                  util::Table::Fmt(std::uint64_t{sub_bits}),
                  util::Table::Fmt(static_cast<std::uint64_t>(
                      static_cast<double>(d) / eps)),
                  hh, util::Table::Fmt(std::uint64_t{false_pos})});
  }
  table.Print();
  std::printf(
      "Misra-Gries pays no factor of d: frequent ITEMS admit summaries far\n"
      "below the Omega(d/eps) ITEMSET floor -- the separation the paper\n"
      "draws between the two problems (its lower bounds show no analogous\n"
      "trick exists for itemsets).\n");
}

}  // namespace

int main() {
  Contrast();
  return 0;
}
