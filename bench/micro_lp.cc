// Microbenchmarks: simplex / L1 decoding throughput.

#include <benchmark/benchmark.h>

#include "lp/l1fit.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

void BM_SimplexDense(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 2 * m;
  util::Rng rng(1);
  lp::LpProblem p;
  p.a = linalg::Matrix(m, n);
  linalg::Vector feasible(n);
  for (auto& v : feasible) v = rng.UniformDouble();
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) p.a(r, c) = rng.Gaussian();
  }
  p.b = p.a.MultiplyVec(feasible);
  p.c.assign(n, 0.0);
  for (auto& c : p.c) c = rng.UniformDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::SolveStandardForm(p));
  }
}
BENCHMARK(BM_SimplexDense)->Arg(10)->Arg(25)->Arg(50);

void BM_L1Regression(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const std::size_t cols = rows / 4;
  util::Rng rng(2);
  linalg::Matrix a(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      a(r, c) = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    }
  }
  linalg::Vector x(cols);
  for (auto& v : x) v = rng.UniformDouble();
  linalg::Vector b = a.MultiplyVec(x);
  for (auto& v : b) v += 0.01 * rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::L1RegressionBox(a, b, 0.0, 1.0));
  }
}
BENCHMARK(BM_L1Regression)->Arg(40)->Arg(80);

}  // namespace

BENCHMARK_MAIN();
