// Microbenchmarks: linear algebra kernels.

#include <benchmark/benchmark.h>

#include "linalg/products.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

linalg::Matrix Random(std::size_t r, std::size_t c) {
  util::Rng rng(1);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = Random(n, n);
  const linalg::Matrix b = Random(n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(b));
  }
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Svd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = Random(2 * n, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::ComputeSvd(a));
  }
}
BENCHMARK(BM_Svd)->Arg(16)->Arg(32)->Arg(64);

void BM_PseudoInverse(benchmark::State& state) {
  const linalg::Matrix a = Random(80, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::PseudoInverse(a));
  }
}
BENCHMARK(BM_PseudoInverse);

void BM_HadamardProduct(benchmark::State& state) {
  util::Rng rng(2);
  const linalg::Matrix a = linalg::RandomBinaryMatrix(24, 32, rng);
  const linalg::Matrix b = linalg::RandomBinaryMatrix(24, 32, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::HadamardProduct({a, b}));
  }
}
BENCHMARK(BM_HadamardProduct);

}  // namespace

BENCHMARK_MAIN();
