// Microbenchmarks: mining engines and condensed representations.

#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "mining/condensed.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

core::Database Baskets(std::size_t n, std::size_t d) {
  util::Rng rng(1);
  return data::PowerLawBaskets(n, d, 1.0, 0.45, 5, 3, 0.2, rng);
}

void BM_Apriori(benchmark::State& state) {
  const core::Database db = Baskets(
      static_cast<std::size_t>(state.range(0)), 32);
  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::MineDatabase(db, opt));
  }
}
BENCHMARK(BM_Apriori)->Arg(2000)->Arg(10000);

void BM_FpGrowth(benchmark::State& state) {
  const core::Database db = Baskets(
      static_cast<std::size_t>(state.range(0)), 32);
  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::FpGrowth(db, opt));
  }
}
BENCHMARK(BM_FpGrowth)->Arg(2000)->Arg(10000);

void BM_MaximalItemsets(benchmark::State& state) {
  const core::Database db = Baskets(3000, 24);
  mining::AprioriOptions opt;
  opt.min_frequency = 0.04;
  opt.max_size = 4;
  const auto frequent = mining::MineDatabase(db, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::MaximalItemsets(frequent));
  }
}
BENCHMARK(BM_MaximalItemsets);

void BM_Closure(benchmark::State& state) {
  const core::Database db = Baskets(5000, 24);
  const core::Itemset t(24, {0, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::Closure(db, t));
  }
}
BENCHMARK(BM_Closure);

}  // namespace

BENCHMARK_MAIN();
