// E8 -- Theorem 17: the For-Each -> For-All median transform.
//
// A For-Each estimator with constant failure probability answers each
// query correctly but usually has *some* wrong itemset among all C(d,k);
// the median over O(log C(d,k)) independent copies makes the whole set
// correct at once. The table measures the all-itemset failure rate
// before and after boosting, and the space multiplier paid.

#include <cstdio>

#include "core/validate.h"
#include "data/generators.h"
#include "sketch/median_boost.h"
#include "sketch/subsample.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void Boost() {
  util::Rng rng(13);
  const std::size_t d = 24;
  // Density 1/2 puts pair frequencies near 1/4, where the binomial
  // variance is largest and single-copy failures actually show up.
  const core::Database db = data::UniformRandom(4000, d, 0.5, rng);

  core::SketchParams inner_params;
  inner_params.k = 2;
  inner_params.eps = 0.05;
  inner_params.delta = 0.25;
  inner_params.scope = core::Scope::kForEach;
  inner_params.answer = core::Answer::kEstimator;

  const auto inner = std::make_shared<sketch::SubsampleSketch>();

  util::Table table(
      "Theorem 17 median boost (d=24, k=2, eps=0.05): all-itemset "
      "failure rate",
      {"sketch", "copies", "bits", "trials", "all-itemsets-valid rate"});

  // Baseline: a single For-Each copy evaluated against the For-All bar.
  {
    constexpr int kTrials = 40;
    int valid = 0;
    sketch::SubsampleSketch algo;
    for (int t = 0; t < kTrials; ++t) {
      const auto summary = algo.Build(db, inner_params, rng);
      const auto est =
          algo.LoadEstimator(summary, inner_params, d, db.num_rows());
      if (core::ValidateEstimatorExhaustive(db, *est, 2, inner_params.eps)
              .valid()) {
        ++valid;
      }
    }
    table.AddRow({"single for-each copy", "1",
                  util::Table::Fmt(std::uint64_t{
                      inner->PredictedSizeBits(db.num_rows(), d,
                                               inner_params)}),
                  util::Table::Fmt(std::int64_t{kTrials}),
                  util::Table::Fmt(static_cast<double>(valid) / kTrials)});
  }

  // Boosted at several copy scales (1.0 = the paper's 10 ln(C(d,k)/delta)).
  for (const double scale : {0.05, 0.15, 0.4, 1.0}) {
    sketch::MedianBoostSketch boost(inner, scale);
    core::SketchParams outer = inner_params;
    outer.scope = core::Scope::kForAll;
    outer.delta = 0.05;
    constexpr int kTrials = 20;
    int valid = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto summary = boost.Build(db, outer, rng);
      const auto est = boost.LoadEstimator(summary, outer, d, db.num_rows());
      if (core::ValidateEstimatorExhaustive(db, *est, 2, outer.eps)
              .valid()) {
        ++valid;
      }
    }
    char name[48];
    std::snprintf(name, sizeof(name), "median boost x%.2f", scale);
    table.AddRow({name,
                  util::Table::Fmt(std::uint64_t{
                      boost.CopyCount(outer, d)}),
                  util::Table::Fmt(std::uint64_t{
                      boost.PredictedSizeBits(db.num_rows(), d, outer)}),
                  util::Table::Fmt(std::int64_t{kTrials}),
                  util::Table::Fmt(static_cast<double>(valid) / kTrials)});
  }
  table.Print();
}

}  // namespace

int main() {
  Boost();
  return 0;
}
