// Microbenchmarks: core database operations.

#include <benchmark/benchmark.h>

#include "core/column_store.h"
#include "core/validate.h"
#include "data/generators.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

core::Database MakeDb(std::size_t n, std::size_t d) {
  util::Rng rng(1);
  return data::UniformRandom(n, d, 0.4, rng);
}

void BM_FrequencyQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const core::Database db = MakeDb(n, d);
  util::Rng rng(2);
  const core::Itemset t = core::RandomItemset(d, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Frequency(t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FrequencyQuery)
    ->Args({1000, 64})
    ->Args({10000, 64})
    ->Args({10000, 512})
    ->Args({100000, 64});

void BM_ColumnStoreQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const core::Database db = MakeDb(n, d);
  const core::ColumnStore cs(db);
  util::Rng rng(2);
  const core::Itemset t = core::RandomItemset(d, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.Frequency(t));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ColumnStoreQuery)
    ->Args({1000, 64})
    ->Args({10000, 64})
    ->Args({10000, 512})
    ->Args({100000, 64});

void BM_SupportCountWide(benchmark::State& state) {
  const core::Database db = MakeDb(5000, 1024);
  util::Rng rng(3);
  const core::Itemset t = core::RandomItemset(1024, 5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.SupportCount(t));
  }
}
BENCHMARK(BM_SupportCountWide);

void BM_HStack(benchmark::State& state) {
  const core::Database a = MakeDb(2000, 128);
  const core::Database b = MakeDb(2000, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Database::HStack(a, b));
  }
}
BENCHMARK(BM_HStack);

void BM_ColumnExtract(benchmark::State& state) {
  const core::Database db = MakeDb(20000, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Column(17));
  }
}
BENCHMARK(BM_ColumnExtract);

void BM_RandomItemset(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RandomItemset(256, 4, rng));
  }
}
BENCHMARK(BM_RandomItemset);

}  // namespace

BENCHMARK_MAIN();
