// E10 -- the headline claim in one table: uniform sampling is space
// optimal for itemset frequency sketching.
//
// For a sweep of hard Theorem 13 instances, compares three quantities:
//   payload   = the information the instance provably forces any valid
//               sketch to carry ((d/2) * 1/eps bits),
//   subsample = the size of the SUBSAMPLE summary that actually answers
//               the queries (the upper bound),
//   envelope  = the best naive algorithm's size.
// The subsample/payload ratio stays bounded by the O(log(C(d,k)/delta))
// union-bound factor -- i.e. the upper and lower bounds track each other,
// which is the paper's "sampling is optimal" conclusion. A verification
// column confirms the payload really is decodable from the summary.

#include <cmath>
#include <cstdio>

#include "lowerbound/thm13.h"
#include "sketch/envelope.h"
#include "sketch/subsample.h"
#include "util/combinatorics.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void Headline() {
  util::Rng rng(15);
  util::Table table(
      "sampling is space optimal: payload (forced bits) vs SUBSAMPLE size",
      {"d", "k", "1/eps", "payload bits", "subsample bits",
       "ratio / log-factor", "payload decodable"});
  const std::size_t shapes[][3] = {{16, 2, 8},  {32, 2, 16}, {64, 2, 32},
                                   {32, 3, 32}, {64, 3, 64}, {48, 4, 48}};
  for (const auto& [d, k, inv_eps] : shapes) {
    const lowerbound::Thm13Instance inst(d, k, inv_eps);
    core::SketchParams p;
    p.k = k;
    p.eps = inst.SketchEps();
    p.delta = 0.05;
    p.scope = core::Scope::kForAll;
    p.answer = core::Answer::kIndicator;
    sketch::SubsampleSketch algo;
    const std::size_t sketch_bits =
        algo.PredictedSizeBits(inv_eps, d, p);
    // The union-bound log factor in Lemma 9 (plus the Chernoff constant)
    // is the entire gap between upper and lower bound.
    const double log_factor =
        16.0 / 0.75 * (std::log(2.0) + util::LogBinomial(d, k) -
                       std::log(p.delta));
    const double ratio = static_cast<double>(sketch_bits) /
                         static_cast<double>(inst.PayloadBits());

    // Verify decodability on one draw.
    const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
    const core::Database db = inst.BuildDatabase(payload);
    const auto summary = algo.Build(db, p, rng);
    const auto ind = algo.LoadIndicator(summary, p, d, db.num_rows());
    const util::BitVector rec = inst.ReconstructPayload(*ind);
    const double recovered =
        1.0 - static_cast<double>(rec.HammingDistance(payload)) /
                  static_cast<double>(inst.PayloadBits());

    char decode[32];
    std::snprintf(decode, sizeof(decode), "%.1f%%", 100.0 * recovered);
    table.AddRow({util::Table::Fmt(std::uint64_t{d}),
                  util::Table::Fmt(std::uint64_t{k}),
                  util::Table::Fmt(std::uint64_t{inv_eps}),
                  util::Table::Fmt(std::uint64_t{inst.PayloadBits()}),
                  util::Table::Fmt(std::uint64_t{sketch_bits}),
                  util::Table::Fmt(ratio / (log_factor / 2.0)), decode});
  }
  table.Print();
  std::printf(
      "ratio/log-factor ~ constant across the sweep: the SUBSAMPLE upper\n"
      "bound and the Theorem 13 lower bound differ only by the Lemma 9\n"
      "union-bound logarithm, i.e. uniform sampling is space optimal.\n");
}

}  // namespace

int main() {
  Headline();
  return 0;
}
