// micro_ingest: streaming ingest on the perf trajectory.
//
//   micro_ingest --json [out.json] [--rows 60000] [--batch 1000]
//                [--rounds 30]
//
// Four kernels in the repo's stable bench schema
//   {"kernel": str, "threads": int, "batch": int, "ns_per_query": float}:
//
//   ingest_rows   ns per row through the full pipeline (SPSC ring ->
//                 ingest thread -> builder Observe), producer + ingest
//                 thread; `batch` is the stream length, the reciprocal
//                 is rows/s sustained.
//   ingest_rows@wal_sync=<policy>
//                 the same pipeline with the write-ahead log enabled
//                 under each sync policy (ingest/wal.h). Acceptance
//                 bar: on_snapshot (the server default) must stay
//                 within 1.2x of the no-WAL ingest_rows number, or the
//                 bench exits nonzero.
//   publish       ns per snapshot publication: builder Summary ->
//                 Engine::FromFile -> SketchPod::Publish swap.
//   query_idle    ns per estimate_many query against a published
//                 snapshot with no ingest running (the baseline).
//   query_steady  the same queries while the ingest thread churns rows
//                 and publishes into the same pod -- the build-while-
//                 serve number; `threads` counts the query thread plus
//                 the ingest thread.
//
// Every run also asserts the ingest invariant: the first published
// snapshot answers estimate_many bit-identically to a one-shot
// Engine::Build over the same row prefix with the same seed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "ingest/ingest.h"
#include "obs/metrics.h"
#include "serve/pod.h"
#include "sketch/builtin_algorithms.h"
#include "sketch/sketch_file.h"
#include "sketch/streaming.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

constexpr std::size_t kColumns = 32;
constexpr std::uint64_t kSeed = 7;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

std::vector<core::Itemset> MakeQueries(std::size_t count) {
  util::Rng rng(101);
  std::vector<core::Itemset> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(kColumns);
    while (t.size() < 3) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(kColumns)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

ingest::IngestOptions Options(std::size_t rows_per_snapshot) {
  ingest::IngestOptions options;
  options.algorithm = "STREAM-SUBSAMPLE";
  options.params = Params();
  options.d = kColumns;
  options.seed = kSeed;
  options.rows_per_snapshot = rows_per_snapshot;
  return options;
}

struct Row {
  std::string kernel;
  std::size_t threads;
  std::size_t batch;
  double ns_per_query;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::size_t stream_rows = 60000;
  std::size_t batch = 1000;
  std::size_t rounds = 30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--rows" && i + 1 < argc) {
      stream_rows =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: micro_ingest --json [out.json] [--rows 60000] "
                   "[--batch 1000] [--rounds 30]\n");
      return 2;
    }
  }
  if (stream_rows < 2000 || batch == 0 || rounds == 0) {
    std::fprintf(stderr,
                 "error: --rows (>= 2000), --batch and --rounds need "
                 "positive values\n");
    return 2;
  }

  util::Rng rng(71);
  const core::Database db =
      data::PowerLawBaskets(stream_rows, kColumns, 1.0, 0.5, 4, 3, 0.2, rng);
  const std::vector<core::Itemset> queries = MakeQueries(batch);
  std::vector<Row> rows;

  // -- invariant check: first snapshot == one-shot build over the prefix.
  {
    const std::size_t prefix = stream_rows / 2;
    std::shared_ptr<const Engine> snapshot;
    {
      auto service = ingest::IngestService::Create(
          Options(prefix),
          [&](std::shared_ptr<const Engine> engine, std::uint64_t published) {
            if (published == prefix) snapshot = std::move(engine);
          });
      for (std::size_t i = 0; i < db.num_rows(); ++i) {
        service->Push(db.Row(i));
      }
      service->Finish();
    }
    core::Database prefix_db(0, kColumns);
    for (std::size_t i = 0; i < prefix; ++i) prefix_db.AppendRow(db.Row(i));
    util::Rng build_rng(kSeed);
    const auto direct =
        Engine::Build(prefix_db, "STREAM-SUBSAMPLE", Params(), build_rng);
    std::vector<double> from_snapshot, from_direct;
    snapshot->estimate_many(queries, &from_snapshot);
    direct->estimate_many(queries, &from_direct);
    if (from_snapshot != from_direct) {
      std::fprintf(stderr,
                   "error: published snapshot diverged from one-shot "
                   "build over the same prefix\n");
      return 1;
    }
  }

  // -- ingest_rows: full pipeline throughput, one publish at the end.
  {
    auto service = ingest::IngestService::Create(
        Options(stream_rows),
        [](std::shared_ptr<const Engine>, std::uint64_t) {});
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < db.num_rows(); ++i) service->Push(db.Row(i));
    service->Finish();
    rows.push_back({"ingest_rows", 2, stream_rows,
                    ElapsedNs(start) / static_cast<double>(stream_rows)});
  }

  // -- ingest_rows@wal_sync=<policy>: the same pipeline with the
  // write-ahead log under each sync policy, snapshotting (and therefore
  // checkpointing) every stream_rows/4 rows. The durability tax of
  // on_snapshot -- the default the server runs with -- must stay within
  // 1.2x of the no-WAL ingest_rows number, or the bench exits nonzero.
  double no_wal_ns = rows.back().ns_per_query;
  double on_snapshot_ns = 0.0;
  for (const ingest::WalSyncPolicy policy :
       {ingest::WalSyncPolicy::kOnSnapshot, ingest::WalSyncPolicy::kEveryN,
        ingest::WalSyncPolicy::kEveryRecord}) {
    const std::string wal_dir =
        "micro_ingest_wal_" + std::string(ingest::WalSyncPolicyName(policy));
    std::filesystem::remove_all(wal_dir);
    ingest::IngestOptions options = Options(stream_rows / 4);
    options.wal_dir = wal_dir;
    options.wal_sync = policy;
    auto service = ingest::IngestService::Create(
        options, [](std::shared_ptr<const Engine>, std::uint64_t) {});
    if (service == nullptr) {
      std::fprintf(stderr, "error: cannot open WAL in %s\n", wal_dir.c_str());
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < db.num_rows(); ++i) service->Push(db.Row(i));
    service->Finish();
    const double ns = ElapsedNs(start) / static_cast<double>(stream_rows);
    if (service->wal_failed()) {
      std::fprintf(stderr, "error: WAL failed during the bench run\n");
      return 1;
    }
    if (policy == ingest::WalSyncPolicy::kOnSnapshot) on_snapshot_ns = ns;
    rows.push_back({std::string("ingest_rows@wal_sync=") +
                        ingest::WalSyncPolicyName(policy),
                    2, stream_rows, ns});
    std::filesystem::remove_all(wal_dir);
  }
  if (on_snapshot_ns > 1.2 * no_wal_ns) {
    std::fprintf(stderr,
                 "error: on_snapshot WAL tax %.1f ns/row exceeds 1.2x the "
                 "no-WAL baseline %.1f ns/row\n",
                 on_snapshot_ns, no_wal_ns);
    return 1;
  }
  std::fprintf(stderr, "wal tax: on_snapshot %.2fx of no-WAL baseline\n",
               on_snapshot_ns / no_wal_ns);

  // -- publish: Summary -> FromFile -> Publish, on a warmed builder --
  // exactly what the ingest thread does at every snapshot boundary.
  serve::SketchPod pod;
  pod.AddStream("bench");
  {
    auto algorithm = sketch::BuiltinRegistry().Create("STREAM-SUBSAMPLE");
    const auto* streaming =
        dynamic_cast<const sketch::StreamingSketch*>(algorithm.get());
    util::Rng builder_rng(kSeed);
    auto builder = streaming->NewBuilder(kColumns, Params(), builder_rng);
    for (std::size_t i = 0; i < db.num_rows(); ++i) {
      builder->Observe(db.Row(i));
    }
    // Per-round timings go through the shared obs histogram so the
    // percentiles printed here use the exact bucket/quantile math of
    // the server's ingest_publish_ns metric.
    obs::Histogram publish_hist;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      sketch::SketchFile file;
      file.algorithm = "STREAM-SUBSAMPLE";
      file.params = Params();
      file.n = builder->rows_seen();
      file.d = kColumns;
      file.summary = builder->Summary();
      auto engine = Engine::FromFile(std::move(file));
      pod.Publish("bench", std::make_shared<const Engine>(std::move(*engine)),
                  builder->rows_seen());
      publish_hist.Record(static_cast<std::uint64_t>(ElapsedNs(t0)));
    }
    rows.push_back(
        {"publish", 1, 1, ElapsedNs(start) / static_cast<double>(rounds)});
    const obs::HistogramSnapshot snap = publish_hist.Snapshot();
    std::fprintf(stderr,
                 "publish latency: p50=%llu ns p90=%llu ns p99=%llu ns "
                 "max=%llu ns (%llu rounds)\n",
                 static_cast<unsigned long long>(snap.Quantile(0.5)),
                 static_cast<unsigned long long>(snap.Quantile(0.9)),
                 static_cast<unsigned long long>(snap.Quantile(0.99)),
                 static_cast<unsigned long long>(snap.max),
                 static_cast<unsigned long long>(snap.count));
  }

  // -- query_idle: estimate_many against the resident snapshot, no churn.
  {
    auto engine = pod.Acquire("bench");
    std::vector<double> answers;
    engine->estimate_many(queries, &answers);  // warm the views
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      engine->estimate_many(queries, &answers);
    }
    rows.push_back({"query_idle", 1, batch,
                    ElapsedNs(start) /
                        static_cast<double>(rounds * batch)});
  }

  // -- query_steady: the same queries while ingest churns and publishes
  // into the same pod every 2000 rows.
  {
    std::atomic<bool> done{false};
    auto service = ingest::IngestService::Create(
        Options(2000),
        [&](std::shared_ptr<const Engine> engine, std::uint64_t published) {
          pod.Publish("bench", std::move(engine), published);
        });
    std::thread feeder([&] {
      // Cycle the stream until the query side finishes.
      while (!done.load(std::memory_order_acquire)) {
        for (std::size_t i = 0;
             i < db.num_rows() && !done.load(std::memory_order_acquire);
             ++i) {
          service->Push(db.Row(i));
        }
      }
    });
    std::vector<double> answers;
    pod.Acquire("bench")->estimate_many(queries, &answers);  // warm
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      // Re-acquire each round: steady-state monitors follow the live
      // snapshot, so the swap cost is part of the measured path.
      pod.Acquire("bench")->estimate_many(queries, &answers);
    }
    const double ns =
        ElapsedNs(start) / static_cast<double>(rounds * batch);
    done.store(true, std::memory_order_release);
    feeder.join();
    service->Finish();
    rows.push_back({"query_steady", 2, batch, ns});
  }

  std::FILE* out =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"ns_per_query\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].threads, rows[i].batch,
                 rows[i].ns_per_query, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
