// Microbenchmarks: sketch build and query throughput.

#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "sketch/release_answers.h"
#include "sketch/release_db.h"
#include "sketch/reservoir.h"
#include "sketch/subsample.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

void BM_SubsampleBuild(benchmark::State& state) {
  util::Rng rng(1);
  const core::Database db = data::UniformRandom(
      static_cast<std::size_t>(state.range(0)), 64, 0.4, rng);
  sketch::SubsampleSketch algo;
  const auto p = Params();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.Build(db, p, rng));
  }
}
BENCHMARK(BM_SubsampleBuild)->Arg(10000)->Arg(100000);

void BM_SubsampleQuery(benchmark::State& state) {
  util::Rng rng(2);
  const core::Database db = data::UniformRandom(50000, 64, 0.4, rng);
  sketch::SubsampleSketch algo;
  const auto p = Params();
  const auto summary = algo.Build(db, p, rng);
  const auto est = algo.LoadEstimator(summary, p, 64, 50000);
  const core::Itemset t(64, {3, 17});
  for (auto _ : state) {
    benchmark::DoNotOptimize(est->EstimateFrequency(t));
  }
}
BENCHMARK(BM_SubsampleQuery);

void BM_ReleaseAnswersBuild(benchmark::State& state) {
  util::Rng rng(3);
  const core::Database db = data::UniformRandom(5000, 32, 0.4, rng);
  sketch::ReleaseAnswersSketch algo;
  const auto p = Params();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.Build(db, p, rng));
  }
}
BENCHMARK(BM_ReleaseAnswersBuild);

void BM_ReleaseAnswersQuery(benchmark::State& state) {
  util::Rng rng(4);
  const core::Database db = data::UniformRandom(5000, 32, 0.4, rng);
  sketch::ReleaseAnswersSketch algo;
  const auto p = Params();
  const auto summary = algo.Build(db, p, rng);
  const auto est = algo.LoadEstimator(summary, p, 32, 5000);
  const core::Itemset t(32, {3, 17});
  for (auto _ : state) {
    benchmark::DoNotOptimize(est->EstimateFrequency(t));
  }
}
BENCHMARK(BM_ReleaseAnswersQuery);

void BM_ReservoirObserve(benchmark::State& state) {
  util::Rng rng(5);
  sketch::ReservoirBuilder builder(64, Params(), rng);
  const util::BitVector row = rng.RandomBits(64);
  for (auto _ : state) {
    builder.Observe(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirObserve);

}  // namespace

BENCHMARK_MAIN();
