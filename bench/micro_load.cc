// micro_load: sketch load-path latency on the perf trajectory.
//
//   micro_load --json [out.json] [--rounds 200] [--rows 20000] [--cols 64]
//
// Measures what PR 5's zero-copy work targets: how long it takes to get
// from an IFSK file on disk to answered queries, on the mapped path
// (mmap + in-place validation + borrowed column views) vs the copying
// path (stream parse + bit unpack + transpose). One SUBSAMPLE and one
// RELEASE-DB sketch are built and saved once; every row then re-opens
// those same files, so the page cache is warm and the numbers isolate
// the software cost of loading (true cold-cache opens depend on the
// storage stack, not on this code).
//
// Emits the repo's stable bench schema
//   {"kernel": str, "threads": int, "batch": int, "ns_per_query": float}
// with one row per kernel@path (threads is always 1):
//   open_cold@mapped/copied    first in-process open + first query
//                              (includes view materialization); batch=1,
//                              ns per open
//   open_warm@mapped/copied    steady-state re-open + one query, the
//                              pod re-admission cost; batch=1, ns per
//                              open (the PR targets mapped >= 5x faster)
//   evict_reload@mapped/copied SketchPod churn: two sketches ping-pong
//                              through a budget that holds only one, so
//                              every Acquire evicts (munmaps) and
//                              reloads; batch=1, ns per Acquire+query
//   query_steady@mapped/copied batched estimate_many on a held-open
//                              engine; batch=10000, ns per query --
//                              mapped and copied must converge here
//                              (same kernels, only the bytes' owner
//                              differs), and answers are asserted
//                              bit-identical between the paths on every
//                              run.
// The mapped rows open arena v2 files; the copied rows force
// Engine::LoadMode::kCopied on the same v2 files (and the evict_reload
// copied row serves legacy v1 files, the pre-PR-5 configuration).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "serve/pod.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

struct Row {
  std::string kernel;
  std::size_t batch;
  double ns_per_query;
};

std::vector<core::Itemset> MakeQueries(std::size_t d, std::size_t count) {
  util::Rng rng(4711);
  std::vector<core::Itemset> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(d);
    while (t.size() < 3) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(d)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

bool Identical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;  // bitwise-exact doubles
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::size_t rounds = 200;
  std::size_t rows_n = 20000;
  std::size_t cols_d = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--rows" && i + 1 < argc) {
      rows_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--cols" && i + 1 < argc) {
      cols_d = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: micro_load --json [out.json] [--rounds 200] "
                   "[--rows 20000] [--cols 64]\n");
      return 2;
    }
  }
  if (rounds == 0 || rows_n == 0 || cols_d < 4) {
    std::fprintf(stderr, "error: --rounds/--rows/--cols need sane values\n");
    return 2;
  }

  // One big row-major sketch (RELEASE-DB: the database itself, the
  // worst case for a copying load) saved at both format versions.
  util::Rng rng(71);
  const core::Database db =
      data::PowerLawBaskets(rows_n, cols_d, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, "RELEASE-DB", Params(), rng);
  if (!built.has_value()) {
    std::fprintf(stderr, "error: Engine::Build failed\n");
    return 1;
  }
  const std::string v2_path = "micro_load_tmp_v2.ifsk";
  const std::string v2b_path = "micro_load_tmp_v2b.ifsk";
  const std::string v1_path = "micro_load_tmp_v1.ifsk";
  const std::string v1b_path = "micro_load_tmp_v1b.ifsk";
  if (!built->Save(v2_path) || !built->Save(v2b_path) ||
      !sketch::SaveSketchFile(v1_path, built->file(),
                              sketch::arena::kVersionLegacy) ||
      !sketch::SaveSketchFile(v1b_path, built->file(),
                              sketch::arena::kVersionLegacy)) {
    std::fprintf(stderr, "error: cannot write bench sketches\n");
    return 1;
  }

  const auto probe = MakeQueries(cols_d, 1);
  const auto batch = MakeQueries(cols_d, 10000);
  std::vector<double> expected;
  built->estimate_many(batch, &expected);

  std::vector<Row> rows;
  double warm_ns[2] = {0.0, 0.0};  // [mapped, copied] for the ratio line

  const Engine::LoadMode modes[2] = {Engine::LoadMode::kMapped,
                                     Engine::LoadMode::kCopied};
  const char* suffix[2] = {"@mapped", "@copied"};
  for (int m = 0; m < 2; ++m) {
    // -- open_cold: first open in this process (first query included, so
    // lazy views and, for the mapped path, first page touches count).
    {
      const auto start = std::chrono::steady_clock::now();
      auto engine = Engine::Open(v2_path, modes[m]);
      if (!engine.has_value() || engine->estimate(probe[0]) < 0.0) {
        std::fprintf(stderr, "error: cold open failed\n");
        return 1;
      }
      rows.push_back({std::string("open_cold") + suffix[m], 1,
                      ElapsedNs(start)});
    }

    // -- open_warm: steady-state re-open + one query per round.
    {
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < rounds; ++r) {
        auto engine = Engine::Open(v2_path, modes[m]);
        if (!engine.has_value() || engine->estimate(probe[0]) < 0.0) {
          std::fprintf(stderr, "error: warm open failed\n");
          return 1;
        }
      }
      const double ns = ElapsedNs(start) / static_cast<double>(rounds);
      warm_ns[m] = ns;
      rows.push_back({std::string("open_warm") + suffix[m], 1, ns});
    }

    // -- evict_reload: pod churn with a budget that holds one sketch.
    // The mapped row serves the v2 files (Acquire maps them); the copied
    // row serves v1 files (Acquire's auto mode stream-parses those) --
    // i.e. exactly the pre-arena serving configuration.
    {
      const std::string& pa = m == 0 ? v2_path : v1_path;
      const std::string& pb = m == 0 ? v2b_path : v1b_path;
      const auto budget_probe = Engine::Open(pa);
      if (!budget_probe.has_value()) {
        std::fprintf(stderr, "error: cannot reopen %s\n", pa.c_str());
        return 1;
      }
      serve::SketchPod pod(budget_probe->resident_bytes());
      pod.AddSketch("a", pa);
      pod.AddSketch("b", pb);
      const std::size_t churn = rounds < 50 ? rounds : 50;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < churn; ++r) {
        const auto engine = pod.Acquire(r % 2 == 0 ? "a" : "b");
        if (engine == nullptr || engine->estimate(probe[0]) < 0.0) {
          std::fprintf(stderr, "error: pod churn failed\n");
          return 1;
        }
      }
      rows.push_back({std::string("evict_reload") + suffix[m], 1,
                      ElapsedNs(start) / static_cast<double>(churn)});
    }

    // -- query_steady: batched queries on a held-open engine; answers
    // must be bit-identical to the built engine's on either path.
    {
      auto engine = Engine::Open(v2_path, modes[m]);
      if (!engine.has_value()) {
        std::fprintf(stderr, "error: steady open failed\n");
        return 1;
      }
      std::vector<double> answers;
      engine->estimate_many(batch, &answers);  // warm the views
      if (!Identical(answers, expected)) {
        std::fprintf(stderr,
                     "error: %s answers diverged from the built engine\n",
                     suffix[m]);
        return 1;
      }
      const std::size_t reps = 10;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < reps; ++r) {
        engine->estimate_many(batch, &answers);
      }
      rows.push_back({std::string("query_steady") + suffix[m], batch.size(),
                      ElapsedNs(start) /
                          static_cast<double>(reps * batch.size())});
    }
  }

  std::remove(v2_path.c_str());
  std::remove(v2b_path.c_str());
  std::remove(v1_path.c_str());
  std::remove(v1b_path.c_str());

  std::fprintf(stderr, "warm re-open: mapped %.0f ns, copied %.0f ns -> %.1fx"
               " (target >= 5x)\n",
               warm_ns[0], warm_ns[1],
               warm_ns[0] > 0.0 ? warm_ns[1] / warm_ns[0] : 0.0);

  std::FILE* out =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"threads\": 1, \"batch\": %zu, "
                 "\"ns_per_query\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].batch,
                 rows[i].ns_per_query, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
