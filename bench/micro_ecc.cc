// Microbenchmarks: error-correcting code throughput.

#include <benchmark/benchmark.h>

#include "ecc/block_code.h"
#include "ecc/concatenated.h"
#include "ecc/reed_solomon.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

void BM_InnerEncode(benchmark::State& state) {
  const ecc::InnerCode& code = ecc::InnerCode::Instance();
  std::uint8_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Encode(x++));
  }
}
BENCHMARK(BM_InnerEncode);

void BM_InnerDecode(benchmark::State& state) {
  const ecc::InnerCode& code = ecc::InnerCode::Instance();
  std::uint32_t r = 0x5a5a5a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Decode(r));
    r = (r * 1103515245u + 12345u) & 0xffffffu;
  }
}
BENCHMARK(BM_InnerDecode);

void BM_RsEncode(benchmark::State& state) {
  util::Rng rng(1);
  const ecc::ReedSolomon rs(255, 85);
  std::vector<std::uint8_t> msg(85);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(msg));
  }
}
BENCHMARK(BM_RsEncode);

void BM_RsDecodeClean(benchmark::State& state) {
  util::Rng rng(2);
  const ecc::ReedSolomon rs(60, 20);
  std::vector<std::uint8_t> msg(20);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  const auto cw = rs.Encode(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(cw));
  }
}
BENCHMARK(BM_RsDecodeClean);

void BM_RsDecodeErrors(benchmark::State& state) {
  util::Rng rng(3);
  const ecc::ReedSolomon rs(60, 20);
  std::vector<std::uint8_t> msg(20);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  auto cw = rs.Encode(msg);
  for (std::size_t pos : rng.SampleWithoutReplacement(60, 20)) {
    cw[pos] ^= 0x3c;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(cw));
  }
}
BENCHMARK(BM_RsDecodeErrors);

void BM_ConcatenatedEncode(benchmark::State& state) {
  util::Rng rng(4);
  const ecc::ConcatenatedCode code = ecc::ConcatenatedCode::Small();
  const util::BitVector msg = rng.RandomBits(3 * code.DataBitsPerBlock());
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Encode(msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msg.size() / 8));
}
BENCHMARK(BM_ConcatenatedEncode);

void BM_ConcatenatedDecode(benchmark::State& state) {
  util::Rng rng(5);
  const ecc::ConcatenatedCode code = ecc::ConcatenatedCode::Small();
  const std::size_t bits = 3 * code.DataBitsPerBlock();
  const util::BitVector msg = rng.RandomBits(bits);
  util::BitVector cw = code.Encode(msg);
  const auto flips = static_cast<std::size_t>(0.03 * cw.size());
  for (std::size_t pos : rng.SampleWithoutReplacement(cw.size(), flips)) {
    cw.Flip(pos);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Decode(cw, bits));
  }
}
BENCHMARK(BM_ConcatenatedDecode);

}  // namespace

BENCHMARK_MAIN();
