// E1 -- Theorem 12: the naive upper-bound envelope.
//
// Regenerates, as a table, the min{nd, C(d,k)[log 1/eps], eps^-a d log..}
// envelope: predicted sizes of RELEASE-DB / RELEASE-ANSWERS / SUBSAMPLE
// for a parameter sweep, the winner at each point, and (for buildable
// shapes) the measured bit-size of an actual summary to confirm the
// formulas are what the code emits.

#include <cstdio>

#include "data/generators.h"
#include "sketch/envelope.h"
#include "sketch/release_answers.h"
#include "sketch/release_db.h"
#include "sketch/subsample.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void SweepTable(core::Answer answer) {
  util::Table table(
      std::string("Theorem 12 envelope, For-All ") +
          core::ToString(answer) + " sketches",
      {"n", "d", "k", "eps", "RELEASE-DB", "RELEASE-ANSWERS", "SUBSAMPLE",
       "winner"});
  const std::size_t ns[] = {1000, 100000, 100000000};
  const std::size_t ds[] = {16, 64, 256};
  const std::size_t ks[] = {2, 3};
  const double epss[] = {0.1, 0.01, 0.001};
  for (std::size_t n : ns) {
    for (std::size_t d : ds) {
      for (std::size_t k : ks) {
        for (double eps : epss) {
          core::SketchParams p;
          p.k = k;
          p.eps = eps;
          p.delta = 0.05;
          p.scope = core::Scope::kForAll;
          p.answer = answer;
          const auto r = sketch::NaiveEnvelope(n, d, p);
          table.AddRow({util::Table::Fmt(std::uint64_t{n}),
                        util::Table::Fmt(std::uint64_t{d}),
                        util::Table::Fmt(std::uint64_t{k}),
                        util::Table::Fmt(eps),
                        util::Table::Fmt(std::uint64_t{r.release_db_bits}),
                        util::Table::Fmt(
                            std::uint64_t{r.release_answers_bits}),
                        util::Table::Fmt(std::uint64_t{r.subsample_bits}),
                        r.winner});
        }
      }
    }
  }
  table.Print();
}

void MeasuredVsPredicted() {
  util::Rng rng(1);
  const core::Database db = data::UniformRandom(2000, 20, 0.4, rng);
  util::Table table("measured Build() size vs PredictedSizeBits",
                    {"algorithm", "answer", "predicted", "measured"});
  core::SketchParams p;
  p.k = 2;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  const sketch::ReleaseDbSketch rdb;
  const sketch::ReleaseAnswersSketch ra;
  const sketch::SubsampleSketch ss;
  const core::SketchAlgorithm* algos[] = {&rdb, &ra, &ss};
  for (const auto* algo : algos) {
    for (core::Answer answer :
         {core::Answer::kIndicator, core::Answer::kEstimator}) {
      p.answer = answer;
      const std::size_t predicted = algo->PredictedSizeBits(2000, 20, p);
      const std::size_t measured = algo->Build(db, p, rng).size();
      table.AddRow({algo->name(), core::ToString(answer),
                    util::Table::Fmt(std::uint64_t{predicted}),
                    util::Table::Fmt(std::uint64_t{measured})});
    }
  }
  table.Print();
}

}  // namespace

int main() {
  SweepTable(core::Answer::kIndicator);
  SweepTable(core::Answer::kEstimator);
  MeasuredVsPredicted();
  return 0;
}
