// E4 -- Theorem 14: the INDEX reduction.
//
// Plays the one-way INDEX game over N = (d/2)/eps through For-Each
// indicator sketches. A full-size SUBSAMPLE message wins with probability
// >= 2/3 (so INDEX's Omega(N) bound applies to the sketch); messages
// truncated below the bound drop toward coin-flipping.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "comm/one_way.h"
#include "lowerbound/index_protocol.h"
#include "sketch/release_db.h"
#include "sketch/subsample.h"
#include "util/bitio.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

/// Wraps a sketch protocol, truncating Alice's message to a row budget.
class TruncatedProtocol : public comm::OneWayIndexProtocol {
 public:
  TruncatedProtocol(const lowerbound::SketchIndexProtocol* inner,
                    std::size_t d, double keep)
      : inner_(inner), d_(d), keep_(keep) {}

  std::size_t universe() const override { return inner_->universe(); }

  util::BitVector AliceMessage(const util::BitVector& x,
                               std::uint64_t seed) const override {
    const util::BitVector full = inner_->AliceMessage(x, seed);
    const std::size_t rows = full.size() / d_;
    const std::size_t kept = std::max<std::size_t>(
        1, static_cast<std::size_t>(keep_ * static_cast<double>(rows)));
    util::BitWriter w;
    for (std::size_t r = 0; r < kept; ++r) {
      w.WriteBits(full.Slice(r * d_, d_));
    }
    return w.Finish();
  }

  bool BobOutput(const util::BitVector& message, std::size_t y,
                 std::uint64_t seed) const override {
    return inner_->BobOutput(message, y, seed);
  }

 private:
  const lowerbound::SketchIndexProtocol* inner_;
  std::size_t d_;
  double keep_;
};

void Play(std::size_t d, std::size_t num_rows, std::size_t trials) {
  util::Rng rng(4);
  const auto subsample = std::make_shared<sketch::SubsampleSketch>();
  lowerbound::SketchIndexProtocol protocol(subsample, d, 2, num_rows);

  char title[160];
  std::snprintf(title, sizeof(title),
                "Theorem 14 INDEX game: d=%zu, 1/eps=%zu, universe N=%zu",
                d, num_rows, protocol.universe());
  util::Table table(title, {"message", "message bits", "success rate",
                            ">= 2/3 ?"});

  const comm::IndexGameResult full =
      comm::PlayIndexGame(protocol, trials, rng);
  table.AddRow({"full SUBSAMPLE",
                util::Table::Fmt(std::uint64_t{full.max_message_bits}),
                util::Table::Fmt(full.SuccessRate()),
                full.SuccessRate() >= 2.0 / 3.0 ? "yes" : "no"});
  for (const double keep : {0.5, 0.1, 0.02, 0.005, 0.002, 0.0005}) {
    TruncatedProtocol truncated(&protocol, d, keep);
    const comm::IndexGameResult r =
        comm::PlayIndexGame(truncated, trials, rng);
    char name[32];
    std::snprintf(name, sizeof(name), "truncated %.2f%%", 100 * keep);
    table.AddRow({name,
                  util::Table::Fmt(std::uint64_t{r.max_message_bits}),
                  util::Table::Fmt(r.SuccessRate()),
                  r.SuccessRate() >= 2.0 / 3.0 ? "yes" : "no"});
  }
  table.Print();
}

}  // namespace

int main() {
  Play(16, 8, 120);
  Play(24, 12, 80);
  return 0;
}
