// micro_serve: serving overhead on the perf trajectory.
//
//   micro_serve --json [out.json] [--clients 1,2,4,8] [--batch 1000]
//               [--rounds 50]
//
// Compares direct Engine::estimate_many calls against the same batches
// served through the wire protocol over an in-process loopback transport
// (serve/transport.h) -- the full encode/frame/dispatch/route/coalesce/
// decode path minus the kernel, with no socket noise -- at 1/2/4/8
// concurrent clients. Each served client owns one connection into a
// dedicated ServeConnection thread; all connections share one Router, so
// concurrent clients exercise the cross-client coalescing path.
//
// Emits the repo's stable bench schema
//   {"kernel": str, "threads": int, "batch": int, "ns_per_query": float}
// where `threads` is the number of concurrent clients:
//   direct           C threads calling engine.estimate_many directly
//   served_loopback  C protocol clients through the loopback server
// Answers are bit-identical between the two kernels (asserted on every
// run); only the serving layer differs.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "serve/client.h"
#include "serve/pod.h"
#include "serve/router.h"
#include "serve/server.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

constexpr std::size_t kRows = 50000;
constexpr std::size_t kColumns = 64;
constexpr char kSketchName[] = "bench";

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

/// Per-client query batch as raw attribute lists (what the client sends)
/// plus the equivalent Itemsets (what the direct kernel consumes).
struct ClientBatch {
  std::vector<std::vector<std::uint32_t>> wire;
  std::vector<core::Itemset> itemsets;
};

ClientBatch MakeBatch(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  ClientBatch batch;
  batch.wire.reserve(count);
  batch.itemsets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(kColumns);
    while (t.size() < 3) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(kColumns)));
    }
    std::vector<std::uint32_t> attrs;
    for (std::size_t a : t.Attributes()) {
      attrs.push_back(static_cast<std::uint32_t>(a));
    }
    batch.wire.push_back(std::move(attrs));
    batch.itemsets.push_back(std::move(t));
  }
  return batch;
}

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::vector<std::size_t> ParseList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    const long v = std::strtol(csv.substr(pos, next - pos).c_str(),
                               nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  return out;
}

struct Row {
  std::string kernel;
  std::size_t clients;
  std::size_t batch;
  double ns_per_query;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::size_t> client_counts = {1, 2, 4, 8};
  std::vector<std::size_t> batch_sizes = {1000};
  std::size_t rounds = 50;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--clients" && i + 1 < argc) {
      client_counts = ParseList(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_sizes = ParseList(argv[++i]);
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: micro_serve --json [out.json] [--clients "
                   "1,2,4,8] [--batch 1000] [--rounds 50]\n");
      return 2;
    }
  }
  (void)json;  // the sweep always runs; --json only redirects output
  if (client_counts.empty() || batch_sizes.empty() || rounds == 0) {
    std::fprintf(stderr, "error: --clients/--batch/--rounds need "
                         "positive values\n");
    return 2;
  }

  // One sketch, saved to disk so the pod serves exactly what a real
  // deployment would (the file is the hand-off boundary).
  util::Rng rng(71);
  const core::Database db =
      data::PowerLawBaskets(kRows, kColumns, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  if (!built.has_value()) {
    std::fprintf(stderr, "error: Engine::Build failed\n");
    return 1;
  }
  const Engine& engine = *built;
  const std::string sketch_path = "micro_serve_tmp.ifsk";
  if (!engine.Save(sketch_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", sketch_path.c_str());
    return 1;
  }
  serve::Router router({std::make_shared<serve::SketchPod>()});
  router.AddSketch(kSketchName, sketch_path);
  router.Acquire(kSketchName);  // warm: load + view materialization

  std::vector<Row> rows;
  for (std::size_t batch : batch_sizes) {
    for (std::size_t clients : client_counts) {
      std::vector<ClientBatch> batches;
      for (std::size_t c = 0; c < clients; ++c) {
        batches.push_back(MakeBatch(batch, 100 + c));
      }

      // Reference answers once per client batch (also the warmup).
      std::vector<std::vector<double>> expected(clients);
      for (std::size_t c = 0; c < clients; ++c) {
        engine.estimate_many(batches[c].itemsets, &expected[c]);
      }

      // -- direct: C threads of engine.estimate_many, no serving layer.
      {
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < clients; ++c) {
          threads.emplace_back([&, c] {
            std::vector<double> answers;
            for (std::size_t r = 0; r < rounds; ++r) {
              engine.estimate_many(batches[c].itemsets, &answers);
            }
          });
        }
        for (auto& t : threads) t.join();
        rows.push_back({"direct", clients, batch,
                        ElapsedNs(start) /
                            static_cast<double>(clients * batch * rounds)});
      }

      // -- served: the same batches through protocol + loopback + router.
      {
        std::vector<std::unique_ptr<serve::Transport>> client_ends;
        std::vector<std::thread> server_threads;
        for (std::size_t c = 0; c < clients; ++c) {
          auto [client_end, server_end] =
              serve::LoopbackTransport::CreatePair();
          client_ends.push_back(std::move(client_end));
          server_threads.emplace_back(
              [&router, t = std::move(server_end)]() mutable {
                serve::ServeConnection(router, *t);
              });
        }
        // Construct the protocol clients (and record each one's final
        // answers) outside the timed region: the timer should cover the
        // serving path only, not client setup or verification.
        std::vector<std::unique_ptr<serve::SketchClient>> protocol_clients;
        for (std::size_t c = 0; c < clients; ++c) {
          protocol_clients.push_back(std::make_unique<serve::SketchClient>(
              std::move(client_ends[c])));
        }
        std::atomic<bool> failed{false};
        std::vector<std::vector<double>> served(clients);
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < clients; ++c) {
          threads.emplace_back([&, c] {
            for (std::size_t r = 0; r < rounds; ++r) {
              auto answers = protocol_clients[c]->EstimateMany(
                  kSketchName, batches[c].wire);
              if (!answers.has_value()) {
                failed.store(true);
                return;
              }
              if (r + 1 == rounds) served[c] = *std::move(answers);
            }
          });
        }
        for (auto& t : threads) t.join();
        const double ns = ElapsedNs(start) /
                          static_cast<double>(clients * batch * rounds);
        protocol_clients.clear();  // hang up -> server EOF
        for (auto& t : server_threads) t.join();
        for (std::size_t c = 0; c < clients; ++c) {
          if (failed.load() || served[c] != expected[c]) {
            std::fprintf(stderr,
                         "error: served answers diverged from direct "
                         "estimate_many\n");
            return 1;
          }
        }
        rows.push_back({"served_loopback", clients, batch, ns});
      }
    }
  }
  std::remove(sketch_path.c_str());

  std::FILE* out =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"ns_per_query\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].clients, rows[i].batch,
                 rows[i].ns_per_query, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
