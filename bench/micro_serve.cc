// micro_serve: serving overhead and failover behavior on the perf
// trajectory.
//
//   micro_serve --json [out.json] [--clients 1,2,4,8] [--batch 1000]
//               [--rounds 50] [--conns 8,1024,10000]
//
// Compares direct Engine::estimate_many calls against the same batches
// served through the wire protocol over an in-process loopback transport
// (serve/transport.h) -- the full encode/frame/dispatch/route/coalesce/
// decode path minus the kernel, with no socket noise -- at 1/2/4/8
// concurrent clients. Each served client owns one connection into a
// dedicated ServeConnection thread; all connections share one Router, so
// concurrent clients exercise the cross-client coalescing path.
//
// Two replication scenarios ride along, both on a 2-pod router with
// every name on both pods (R=2), 4 clients:
//   served_kill_pod  the primary replica is fault-injected dead a third
//                    of the way in (SketchPod::SetFault refuses every
//                    acquire) and revived at two thirds; the router
//                    fails over, then probes the pod back in. The run
//                    asserts ZERO client-visible failures and
//                    bit-identical answers through the outage.
//   served_skewed    90% of requests hammer one hot name, the rest
//                    spread over 7 cold names; load-aware selection
//                    spreads the hot name across its replicas.
//
// --conns adds the connection-scale sweep over the epoll reactor
// (serve/reactor.h) on real loopback TCP: for each count C the bench
// opens C concurrent connections, verifies one query on EVERY
// connection bit-identical to the direct Engine answer, then measures
// ns/query with 8 active pipelined clients while the other C-8
// connections sit open -- the held-connection cost the reactor exists
// to make cheap. Counts are clamped to what RLIMIT_NOFILE allows (each
// loopback connection costs two descriptors in this one process) and
// the clamp is reported, so the emitted rows always reflect a measured
// ceiling, never a silent truncation. A `served_conns` row per count
// lands in the same schema with `threads` = connection count; if a
// >=1024-connection row exceeds 1.5x the 8-connection baseline the
// bench warns (stderr) but still emits the row.
//
// Emits the repo's stable bench schema
//   {"kernel": str, "threads": int, "batch": int, "ns_per_query": float,
//    "p50_ns": float, "p99_ns": float}
// where `threads` is the number of concurrent clients and p50/p99 are
// per-query request-latency percentiles (request latency / batch size),
// the tail-latency columns the failover scenarios exist to watch:
//   direct           C threads calling engine.estimate_many directly
//   served_loopback  C protocol clients through the loopback server
// Answers are verified bit-identical to direct Engine calls on EVERY
// round of every served kernel; only the serving layer differs.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/pod.h"
#include "serve/reactor.h"
#include "serve/router.h"
#include "serve/server.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

constexpr std::size_t kRows = 50000;
constexpr std::size_t kColumns = 64;
constexpr char kSketchName[] = "bench";

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

/// Per-client query batch as raw attribute lists (what the client sends)
/// plus the equivalent Itemsets (what the direct kernel consumes).
struct ClientBatch {
  std::vector<std::vector<std::uint32_t>> wire;
  std::vector<core::Itemset> itemsets;
};

ClientBatch MakeBatch(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  ClientBatch batch;
  batch.wire.reserve(count);
  batch.itemsets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(kColumns);
    while (t.size() < 3) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(kColumns)));
    }
    std::vector<std::uint32_t> attrs;
    for (std::size_t a : t.Attributes()) {
      attrs.push_back(static_cast<std::uint32_t>(a));
    }
    batch.wire.push_back(std::move(attrs));
    batch.itemsets.push_back(std::move(t));
  }
  return batch;
}

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::vector<std::size_t> ParseList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    const long v = std::strtol(csv.substr(pos, next - pos).c_str(),
                               nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  return out;
}

struct Row {
  std::string kernel;
  std::size_t clients;
  std::size_t batch;
  double ns_per_query;
  double p50_ns;  ///< per-query request-latency median
  double p99_ns;  ///< per-query request-latency 99th percentile
};

/// Request latencies folded into the shared obs histogram layout. The
/// quantiles below then come from obs::HistogramSnapshot::Quantile --
/// the same bucket bounds and nearest-rank math behind the server's
/// serve_request_ns metrics, so bench p50/p99 and served STATS
/// percentiles read on the same scale (<=25% bucketing error).
obs::HistogramSnapshot LatencyHistogram(const std::vector<double>& ns) {
  obs::Histogram h;
  for (const double v : ns) {
    h.Record(v <= 0.0 ? 0 : static_cast<std::uint64_t>(v));
  }
  return h.Snapshot();
}

/// Percentile of per-request latencies, scaled to ns per query.
double PercentileNsPerQuery(const obs::HistogramSnapshot& latencies,
                            double q, std::size_t batch) {
  return static_cast<double>(latencies.Quantile(q)) /
         static_cast<double>(batch);
}

struct ServedOutcome {
  bool ok = false;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

/// Runs `clients` protocol clients for `rounds` requests each through
/// `router` over loopback connections, verifying every answer batch
/// bit-identical to `expected`. `name_for(c, r)` picks the sketch each
/// request targets; `on_round` (when set) runs on client 0 before its
/// round r -- the fault-injection hook.
ServedOutcome RunServed(
    serve::Router& router, std::size_t clients, std::size_t rounds,
    std::size_t batch, const std::vector<ClientBatch>& batches,
    const std::vector<std::vector<double>>& expected,
    const std::function<std::string(std::size_t, std::size_t)>& name_for,
    const std::function<void(std::size_t)>& on_round) {
  std::vector<std::unique_ptr<serve::Transport>> client_ends;
  std::vector<std::thread> server_threads;
  for (std::size_t c = 0; c < clients; ++c) {
    auto [client_end, server_end] = serve::LoopbackTransport::CreatePair();
    client_ends.push_back(std::move(client_end));
    server_threads.emplace_back(
        [&router, t = std::move(server_end)]() mutable {
          serve::ServeConnection(router, *t);
        });
  }
  // Construct the protocol clients outside the timed region: the timer
  // should cover the serving path only, not client setup.
  std::vector<std::unique_ptr<serve::SketchClient>> protocol_clients;
  for (std::size_t c = 0; c < clients; ++c) {
    protocol_clients.push_back(
        std::make_unique<serve::SketchClient>(std::move(client_ends[c])));
  }
  std::atomic<bool> failed{false};
  std::vector<std::vector<double>> latencies(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    latencies[c].reserve(rounds);
    threads.emplace_back([&, c] {
      for (std::size_t r = 0; r < rounds; ++r) {
        if (c == 0 && on_round) on_round(r);
        const auto t0 = std::chrono::steady_clock::now();
        auto answers =
            protocol_clients[c]->EstimateMany(name_for(c, r), batches[c].wire);
        latencies[c].push_back(ElapsedNs(t0));
        if (!answers.has_value() || *answers != expected[c]) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double total = ElapsedNs(start);
  protocol_clients.clear();  // hang up -> server EOF
  for (auto& t : server_threads) t.join();

  ServedOutcome outcome;
  if (failed.load()) return outcome;  // ok stays false
  std::vector<double> merged;
  for (auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  outcome.ok = true;
  outcome.mean_ns =
      total / static_cast<double>(clients * batch * rounds);
  const obs::HistogramSnapshot lat = LatencyHistogram(merged);
  outcome.p99_ns = PercentileNsPerQuery(lat, 0.99, batch);
  outcome.p50_ns = PercentileNsPerQuery(lat, 0.50, batch);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::size_t> client_counts = {1, 2, 4, 8};
  std::vector<std::size_t> batch_sizes = {1000};
  std::vector<std::size_t> conn_counts;  // empty = no connection sweep
  std::size_t rounds = 50;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--clients" && i + 1 < argc) {
      client_counts = ParseList(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_sizes = ParseList(argv[++i]);
    } else if (arg == "--conns" && i + 1 < argc) {
      conn_counts = ParseList(argv[++i]);
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: micro_serve --json [out.json] [--clients "
                   "1,2,4,8] [--batch 1000] [--rounds 50] "
                   "[--conns 8,1024,10000]\n");
      return 2;
    }
  }
  (void)json;  // the sweep always runs; --json only redirects output
  if (client_counts.empty() || batch_sizes.empty() || rounds == 0) {
    std::fprintf(stderr, "error: --clients/--batch/--rounds need "
                         "positive values\n");
    return 2;
  }

  // One sketch, saved to disk so the pod serves exactly what a real
  // deployment would (the file is the hand-off boundary).
  util::Rng rng(71);
  const core::Database db =
      data::PowerLawBaskets(kRows, kColumns, 1.0, 0.5, 4, 3, 0.2, rng);
  auto built = Engine::Build(db, "SUBSAMPLE", Params(), rng);
  if (!built.has_value()) {
    std::fprintf(stderr, "error: Engine::Build failed\n");
    return 1;
  }
  const Engine& engine = *built;
  const std::string sketch_path = "micro_serve_tmp.ifsk";
  if (!engine.Save(sketch_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", sketch_path.c_str());
    return 1;
  }
  serve::Router router({std::make_shared<serve::SketchPod>()});
  router.AddSketch(kSketchName, sketch_path);
  router.Acquire(kSketchName);  // warm: load + view materialization

  const auto plain_name = [](std::size_t, std::size_t) {
    return std::string(kSketchName);
  };

  std::vector<Row> rows;
  for (std::size_t batch : batch_sizes) {
    for (std::size_t clients : client_counts) {
      std::vector<ClientBatch> batches;
      for (std::size_t c = 0; c < clients; ++c) {
        batches.push_back(MakeBatch(batch, 100 + c));
      }

      // Reference answers once per client batch (also the warmup).
      std::vector<std::vector<double>> expected(clients);
      for (std::size_t c = 0; c < clients; ++c) {
        engine.estimate_many(batches[c].itemsets, &expected[c]);
      }

      // -- direct: C threads of engine.estimate_many, no serving layer.
      {
        std::vector<std::vector<double>> latencies(clients);
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (std::size_t c = 0; c < clients; ++c) {
          latencies[c].reserve(rounds);
          threads.emplace_back([&, c] {
            std::vector<double> answers;
            for (std::size_t r = 0; r < rounds; ++r) {
              const auto t0 = std::chrono::steady_clock::now();
              engine.estimate_many(batches[c].itemsets, &answers);
              latencies[c].push_back(ElapsedNs(t0));
            }
          });
        }
        for (auto& t : threads) t.join();
        const double total = ElapsedNs(start);
        std::vector<double> merged;
        for (auto& lat : latencies) {
          merged.insert(merged.end(), lat.begin(), lat.end());
        }
        const obs::HistogramSnapshot lat = LatencyHistogram(merged);
        const double p99 = PercentileNsPerQuery(lat, 0.99, batch);
        const double p50 = PercentileNsPerQuery(lat, 0.50, batch);
        rows.push_back(
            {"direct", clients, batch,
             total / static_cast<double>(clients * batch * rounds), p50,
             p99});
      }

      // -- served: the same batches through protocol + loopback + router.
      {
        const auto outcome = RunServed(router, clients, rounds, batch,
                                       batches, expected, plain_name,
                                       nullptr);
        if (!outcome.ok) {
          std::fprintf(stderr,
                       "error: served answers diverged from direct "
                       "estimate_many\n");
          return 1;
        }
        rows.push_back({"served_loopback", clients, batch,
                        outcome.mean_ns, outcome.p50_ns, outcome.p99_ns});
      }
    }
  }

  // -- replication scenarios: 2 pods, every name on both (R=2),
  //    4 clients, first configured batch size.
  {
    const std::size_t clients = 4;
    const std::size_t batch = batch_sizes.front();
    std::vector<ClientBatch> batches;
    std::vector<std::vector<double>> expected(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      batches.push_back(MakeBatch(batch, 100 + c));
      engine.estimate_many(batches[c].itemsets, &expected[c]);
    }

    serve::RouterOptions options;
    options.replication = 2;
    // Bench-speed probe windows so the revived pod rejoins within the
    // run rather than minutes later.
    options.probe_backoff = std::chrono::milliseconds(5);
    options.probe_backoff_max = std::chrono::milliseconds(100);

    // kill_pod: fault the primary replica dead for the middle third of
    // the run. Zero failed requests and bit-identical answers required.
    {
      serve::Router frouter({std::make_shared<serve::SketchPod>(),
                             std::make_shared<serve::SketchPod>()},
                            options);
      frouter.AddSketch(kSketchName, sketch_path);
      for (const auto& pod : frouter.pods()) pod->Acquire(kSketchName);
      serve::SketchPod& victim =
          *frouter.pods()[frouter.ShardOf(kSketchName)];
      std::atomic<bool> faulted{false};
      std::atomic<bool> revived{false};
      const auto on_round = [&](std::size_t r) {
        if (r >= rounds / 3 && !faulted.exchange(true)) {
          serve::PodFault fault;
          fault.fail_acquire = true;
          victim.SetFault(fault);
        }
        if (r >= (2 * rounds) / 3 && !revived.exchange(true)) {
          victim.SetFault(serve::PodFault{});
        }
      };
      const auto outcome = RunServed(frouter, clients, rounds, batch,
                                     batches, expected, plain_name,
                                     on_round);
      if (!outcome.ok) {
        std::fprintf(stderr,
                     "error: kill_pod scenario saw a failed or divergent "
                     "request (failover must be invisible)\n");
        return 1;
      }
      rows.push_back({"served_kill_pod", clients, batch, outcome.mean_ns,
                      outcome.p50_ns, outcome.p99_ns});
    }

    // skewed: 8 names over the same file, 90% of traffic on one.
    {
      serve::Router frouter({std::make_shared<serve::SketchPod>(),
                             std::make_shared<serve::SketchPod>()},
                            options);
      std::vector<std::string> names = {"hot"};
      for (int i = 0; i < 7; ++i) names.push_back("cold" + std::to_string(i));
      for (const auto& name : names) {
        frouter.AddSketch(name, sketch_path);
        for (const auto& pod : frouter.pods()) pod->Acquire(name);
      }
      const auto name_for = [&names](std::size_t c, std::size_t r) {
        // Deterministic 90/10 split without shared state: hash (c, r).
        std::uint64_t h = (c * 0x9e3779b97f4a7c15ull) ^ (r * 0x2545f4914f6cdd1dull);
        h ^= h >> 33;
        return h % 10 < 9 ? names[0] : names[1 + h % 7];
      };
      const auto outcome = RunServed(frouter, clients, rounds, batch,
                                     batches, expected, name_for, nullptr);
      if (!outcome.ok) {
        std::fprintf(stderr,
                     "error: skewed scenario saw a failed or divergent "
                     "request\n");
        return 1;
      }
      rows.push_back({"served_skewed", clients, batch, outcome.mean_ns,
                      outcome.p50_ns, outcome.p99_ns});
    }
  }
  // -- connection-scale sweep: C held connections into the epoll
  //    reactor over real loopback TCP, 8 of them actively pipelining.
  if (!conn_counts.empty()) {
    const std::size_t kActive = 8;
    const std::size_t batch = batch_sizes.front();

    // Each loopback connection costs two descriptors in this process
    // (the client end plus the accepted end); keep headroom for the
    // listener, the sketch file, stdio and everything else.
    std::size_t fd_ceiling = 0;
    struct rlimit rl;
    if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur > 256) {
      fd_ceiling = (static_cast<std::size_t>(rl.rlim_cur) - 256) / 2;
    }

    serve::ReactorServer reactor(router);
    if (!reactor.Listen(0)) {
      std::fprintf(stderr, "error: reactor cannot listen for the "
                           "connection sweep\n");
      return 1;
    }
    const std::uint16_t port = reactor.port();

    std::vector<ClientBatch> batches;
    std::vector<std::vector<double>> expected(kActive);
    for (std::size_t c = 0; c < kActive; ++c) {
      batches.push_back(MakeBatch(batch, 100 + c));
      engine.estimate_many(batches[c].itemsets, &expected[c]);
    }
    // The per-connection verification probe: one tiny query every
    // connection must answer bit-identically before it counts as held.
    const ClientBatch probe = MakeBatch(1, 4242);
    std::vector<double> probe_expected;
    engine.estimate_many(probe.itemsets, &probe_expected);

    double baseline_ns = 0.0;
    for (std::size_t conns : conn_counts) {
      std::size_t target = std::max(conns, kActive);
      if (fd_ceiling > 0 && target > fd_ceiling) {
        std::fprintf(stderr,
                     "note: clamping --conns %zu to %zu "
                     "(RLIMIT_NOFILE=%llu, 2 fds per connection)\n",
                     conns, fd_ceiling,
                     static_cast<unsigned long long>(rl.rlim_cur));
        target = fd_ceiling;
      }

      std::vector<std::unique_ptr<serve::SketchClient>> pool;
      pool.reserve(target);
      while (pool.size() < target) {
        auto transport = serve::TcpConnect(port);
        if (transport == nullptr) {
          std::fprintf(stderr,
                       "note: connection ceiling measured at %zu of %zu "
                       "requested\n",
                       pool.size(), target);
          break;
        }
        pool.push_back(
            std::make_unique<serve::SketchClient>(std::move(transport)));
      }
      if (pool.size() < kActive) {
        std::fprintf(stderr, "error: cannot open even %zu connections\n",
                     kActive);
        return 1;
      }
      // Every held connection answers the probe bit-identically, or the
      // sweep is measuring a lie.
      for (auto& client : pool) {
        const auto got = client->EstimateMany(kSketchName, probe.wire);
        if (!got.has_value() || *got != probe_expected) {
          std::fprintf(stderr,
                       "error: connection-sweep answer diverged from "
                       "direct estimate_many at %zu connections\n",
                       pool.size());
          return 1;
        }
      }

      // Measure with kActive pipelined clients; the rest just sit open,
      // which is exactly the load the reactor must keep off the fast
      // path.
      std::atomic<bool> failed{false};
      std::vector<std::vector<double>> latencies(kActive);
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < kActive; ++c) {
        latencies[c].reserve(rounds);
        threads.emplace_back([&, c] {
          for (std::size_t r = 0; r < rounds; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto answers = pool[c]->EstimateManyPipelined(
                kSketchName, batches[c].wire, 8);
            latencies[c].push_back(ElapsedNs(t0));
            if (!answers.has_value() || *answers != expected[c]) {
              failed.store(true);
              return;
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      const double total = ElapsedNs(start);
      if (failed.load()) {
        std::fprintf(stderr,
                     "error: pipelined answers diverged from direct "
                     "estimate_many at %zu connections\n",
                     pool.size());
        return 1;
      }
      std::vector<double> merged;
      for (auto& lat : latencies) {
        merged.insert(merged.end(), lat.begin(), lat.end());
      }
      const obs::HistogramSnapshot lat = LatencyHistogram(merged);
      const double mean =
          total / static_cast<double>(kActive * batch * rounds);
      rows.push_back({"served_conns", pool.size(), batch, mean,
                      PercentileNsPerQuery(lat, 0.50, batch),
                      PercentileNsPerQuery(lat, 0.99, batch)});
      if (baseline_ns == 0.0) {
        baseline_ns = mean;
      } else if (pool.size() >= 1024 && mean > 1.5 * baseline_ns) {
        std::fprintf(stderr,
                     "warning: %zu-connection ns/query %.1f exceeds "
                     "1.5x the %zu-connection baseline %.1f\n",
                     pool.size(), mean, conn_counts.front(), baseline_ns);
      }
      pool.clear();  // hang up before the next count
    }
    reactor.StopAccepting();
    reactor.WaitDrained();
  }

  std::remove(sketch_path.c_str());

  std::FILE* out =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"ns_per_query\": %.1f, \"p50_ns\": %.1f, "
                 "\"p99_ns\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].clients, rows[i].batch,
                 rows[i].ns_per_query, rows[i].p50_ns, rows[i].p99_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
