// E7 -- Theorem 16 / Lemmas 20-27: the estimator lower bound pipeline.
//
// Three tables:
//  (a) Lemma 26 measured: sigma_min of Hadamard products of random
//      binary matrices vs the Omega(sqrt(d0^(k'-1))) prediction, plus
//      the Euclidean-section ratio of the range.
//  (b) The KRSU/De reconstruction cliff: bit-recovery of the secret
//      column from +/-eps answers as n sweeps past ~1/eps^2, with the
//      L1 (De) and L2 (KRSU) decoders side by side.
//  (c) L1 vs L2 when a fraction of answers is adversarially wrong (the
//      "accurate on average" regime that forces L1 in the paper).

#include <cmath>
#include <cstdio>

#include "linalg/euclidean.h"
#include "linalg/products.h"
#include "linalg/svd.h"
#include "lowerbound/estimator_lb.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void SigmaMinTable() {
  util::Rng rng(9);
  util::Table table(
      "Lemma 26 measured: sigma_min(A1 o ... o A_{k'-1}) vs sqrt(rows)",
      {"d0", "k'-1", "rows d0^(k'-1)", "n", "sigma_min",
       "sigma_min/sqrt(rows)", "section delta (sampled)"});
  const std::size_t configs[][3] = {{8, 2, 12},  {16, 2, 12}, {24, 2, 12},
                                    {32, 2, 12}, {6, 3, 12},  {8, 3, 12},
                                    {16, 2, 24}, {24, 2, 24}};
  for (const auto& [d0, factors, n] : configs) {
    std::vector<linalg::Matrix> as;
    for (std::size_t f = 0; f < factors; ++f) {
      as.push_back(linalg::RandomBinaryMatrix(d0, n, rng));
    }
    const linalg::Matrix a = linalg::HadamardProduct(as);
    const double sigma = linalg::SmallestSingularValue(a);
    const double rows = static_cast<double>(a.rows());
    const linalg::SectionEstimate section =
        linalg::EstimateSectionRatio(a, 200, rng);
    table.AddRow({util::Table::Fmt(std::uint64_t{d0}),
                  util::Table::Fmt(std::uint64_t{factors}),
                  util::Table::Fmt(std::uint64_t{a.rows()}),
                  util::Table::Fmt(std::uint64_t{n}),
                  util::Table::Fmt(sigma),
                  util::Table::Fmt(sigma / std::sqrt(rows)),
                  util::Table::Fmt(section.min_ratio)});
  }
  table.Print();
}

void ReconstructionCliff() {
  util::Rng rng(10);
  util::Table table(
      "KRSU/De cliff: secret bits recovered from +/-eps answers "
      "(d0=10, k'=3, eps=1/48, trials=3)",
      {"n", "n * eps^2", "L1 recovered frac", "L2 recovered frac"});
  const double eps = 1.0 / 48.0;
  for (const std::size_t n : {8u, 16u, 32u, 64u, 96u}) {
    double l1_frac = 0.0, l2_frac = 0.0;
    constexpr int kTrials = 3;
    for (int t = 0; t < kTrials; ++t) {
      const lowerbound::KrsuInstance inst(10, 3, n, rng);
      const util::BitVector y = rng.RandomBits(n);
      const core::Database db = inst.BuildDatabase(y);
      linalg::Vector answers(inst.NumQueries());
      for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
        answers[r] = db.Frequency(inst.QueryItemset(r)) +
                     eps * (2.0 * rng.UniformDouble() - 1.0);
      }
      const util::BitVector l1 = inst.ReconstructL1(answers);
      const util::BitVector l2 = inst.ReconstructL2(answers);
      l1_frac += 1.0 - static_cast<double>(l1.HammingDistance(y)) /
                           static_cast<double>(n);
      l2_frac += 1.0 - static_cast<double>(l2.HammingDistance(y)) /
                           static_cast<double>(n);
    }
    table.AddRow({util::Table::Fmt(std::uint64_t{n}),
                  util::Table::Fmt(static_cast<double>(n) * eps * eps),
                  util::Table::Fmt(l1_frac / kTrials),
                  util::Table::Fmt(l2_frac / kTrials)});
  }
  table.Print();
}

void AverageCaseRobustness() {
  util::Rng rng(11);
  util::Table table(
      "L1 (De) vs L2 (KRSU) under a corrupted fraction of answers "
      "(d0=10, k'=3, n=24, exact answers otherwise)",
      {"corrupt frac", "L1 recovered frac", "L2 recovered frac"});
  for (const double corrupt : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    double l1_frac = 0.0, l2_frac = 0.0;
    constexpr int kTrials = 3;
    for (int t = 0; t < kTrials; ++t) {
      const std::size_t n = 24;
      const lowerbound::KrsuInstance inst(10, 3, n, rng);
      const util::BitVector y = rng.RandomBits(n);
      const core::Database db = inst.BuildDatabase(y);
      linalg::Vector answers(inst.NumQueries());
      for (std::size_t r = 0; r < inst.NumQueries(); ++r) {
        answers[r] = db.Frequency(inst.QueryItemset(r));
      }
      const auto bad = static_cast<std::size_t>(
          corrupt * static_cast<double>(inst.NumQueries()));
      for (std::size_t idx :
           rng.SampleWithoutReplacement(inst.NumQueries(), bad)) {
        answers[idx] = rng.UniformDouble();
      }
      const util::BitVector l1 = inst.ReconstructL1(answers);
      const util::BitVector l2 = inst.ReconstructL2(answers);
      l1_frac += 1.0 - static_cast<double>(l1.HammingDistance(y)) /
                           static_cast<double>(n);
      l2_frac += 1.0 - static_cast<double>(l2.HammingDistance(y)) /
                           static_cast<double>(n);
    }
    table.AddRow({util::Table::Fmt(corrupt),
                  util::Table::Fmt(l1_frac / kTrials),
                  util::Table::Fmt(l2_frac / kTrials)});
  }
  table.Print();
}

void AmplifiedPipeline() {
  util::Rng rng(12);
  util::Table table(
      "Theorem 16 amplification: v copies through one estimator view",
      {"v", "c", "k", "n per copy", "payload bits", "noise eps",
       "recovered frac"});
  struct Shape {
    std::size_t d_shatter, k, c, d0, n;
    double eps;
  };
  const Shape shapes[] = {{8, 5, 3, 5, 10, 0.0},
                          {8, 5, 3, 5, 10, 0.002},
                          {16, 4, 2, 12, 10, 0.002},
                          {16, 5, 3, 5, 12, 0.004}};
  for (const auto& shape : shapes) {
    const lowerbound::Thm16Amplified amp(shape.d_shatter, shape.k, shape.c,
                                         shape.d0, shape.n, rng);
    const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
    const core::Database db = amp.BuildDatabase(payload);
    class Noisy : public core::FrequencyEstimator {
     public:
      Noisy(const core::Database* db, double eps, util::Rng* rng)
          : db_(db), eps_(eps), rng_(rng) {}
      double EstimateFrequency(const core::Itemset& t) const override {
        const double noise =
            eps_ == 0.0 ? 0.0 : eps_ * (2.0 * rng_->UniformDouble() - 1.0);
        return db_->Frequency(t) + noise;
      }

     private:
      const core::Database* db_;
      double eps_;
      util::Rng* rng_;
    } oracle(&db, shape.eps, &rng);
    const util::BitVector rec = amp.ReconstructPayload(oracle, 40, rng);
    const std::size_t ok = amp.PayloadBits() - rec.HammingDistance(payload);
    table.AddRow(
        {util::Table::Fmt(std::uint64_t{amp.v()}),
         util::Table::Fmt(std::uint64_t{shape.c}),
         util::Table::Fmt(std::uint64_t{shape.k}),
         util::Table::Fmt(std::uint64_t{shape.n}),
         util::Table::Fmt(std::uint64_t{amp.PayloadBits()}),
         util::Table::Fmt(shape.eps),
         util::Table::Fmt(static_cast<double>(ok) /
                          static_cast<double>(amp.PayloadBits()))});
  }
  table.Print();
}

}  // namespace

int main() {
  SigmaMinTable();
  ReconstructionCliff();
  AverageCaseRobustness();
  AmplifiedPipeline();
  return 0;
}
