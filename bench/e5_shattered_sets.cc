// E5 -- Fact 18: shattered-set verification.
//
// For a sweep of (d, k'), constructs the Appendix A strings and verifies
// exhaustively that every pattern s in {0,1}^v is realized by its query
// itemset T_s. Reports v = k' log2(d/k') against d and k'.

#include <chrono>
#include <cstdio>

#include "lowerbound/shattered_set.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

bool VerifyAllPatterns(const lowerbound::ShatteredSet& s) {
  const std::size_t patterns = std::size_t{1} << s.v();
  for (std::size_t p = 0; p < patterns; ++p) {
    util::BitVector pattern(s.v());
    for (std::size_t i = 0; i < s.v(); ++i) pattern.Set(i, (p >> i) & 1u);
    const core::Itemset ts = s.QueryFor(pattern);
    for (std::size_t i = 0; i < s.v(); ++i) {
      if (ts.ContainedIn(s.Row(i)) != pattern.Get(i)) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace ifsketch;
  util::Table table(
      "Fact 18: v = k' log2(d/k') shattered strings, verified exhaustively",
      {"d", "k'", "block B", "v", "patterns 2^v", "all shattered",
       "verify ms"});
  const std::size_t params[][2] = {
      {8, 1},   {64, 1},   {1024, 1}, {16, 2},  {64, 2},  {256, 2},
      {24, 3},  {96, 3},   {512, 3},  {64, 4},  {256, 4}, {80, 5},
      {320, 5}, {1024, 2},
  };
  for (const auto& [d, kp] : params) {
    const lowerbound::ShatteredSet s(d, kp);
    if (s.v() > 20) {
      table.AddRow({util::Table::Fmt(std::uint64_t{d}),
                    util::Table::Fmt(std::uint64_t{kp}),
                    util::Table::Fmt(std::uint64_t{s.block_size()}),
                    util::Table::Fmt(std::uint64_t{s.v()}),
                    util::Table::Fmt(std::uint64_t{1} << s.v()),
                    "skipped (too many)", "-"});
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    const bool ok = VerifyAllPatterns(s);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    table.AddRow({util::Table::Fmt(std::uint64_t{d}),
                  util::Table::Fmt(std::uint64_t{kp}),
                  util::Table::Fmt(std::uint64_t{s.block_size()}),
                  util::Table::Fmt(std::uint64_t{s.v()}),
                  util::Table::Fmt(std::uint64_t{1} << s.v()),
                  ok ? "yes" : "NO", util::Table::Fmt(std::int64_t{ms})});
  }
  table.Print();
  return 0;
}
