// E3 -- Theorem 13: the hard family's information cliff.
//
// Builds the Theorem 13 database, embeds a random payload of d/(2 eps)
// bits, sketches with SUBSAMPLE at the Lemma 9 size, and decodes the
// payload through the indicator interface. Then truncates the summary to
// a fraction of its rows and reports recovery vs sketch size: recovery
// stays near 100% down to ~the bound and collapses toward 50% (random
// guessing) below it.

#include <cstdio>

#include "lowerbound/thm13.h"
#include "sketch/subsample.h"
#include "util/bitio.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void Cliff(std::size_t d, std::size_t k, std::size_t num_rows) {
  util::Rng rng(3);
  const lowerbound::Thm13Instance inst(d, k, num_rows);
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);

  core::SketchParams p;
  p.k = k;
  p.eps = inst.SketchEps();
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kIndicator;
  sketch::SubsampleSketch algo;
  const util::BitVector summary = algo.Build(db, p, rng);
  const std::size_t total_rows = summary.size() / d;

  char title[160];
  std::snprintf(title, sizeof(title),
                "Theorem 13 cliff: d=%zu k=%zu 1/eps=%zu payload=%zu bits "
                "(lower bound Omega(d/eps)=%zu)",
                d, k, num_rows, inst.PayloadBits(), d * num_rows / 2);
  util::Table table(title, {"sketch bits", "kept rows", "recovered bits",
                            "fraction", "regime"});
  for (const double keep :
       {1.0, 0.6, 0.3, 0.15, 0.08, 0.04, 0.02, 0.01, 0.003,
        0.001, 0.0003}) {
    const std::size_t rows_kept = std::max<std::size_t>(
        1, static_cast<std::size_t>(keep * static_cast<double>(total_rows)));
    util::BitWriter w;
    for (std::size_t r = 0; r < rows_kept; ++r) {
      w.WriteBits(summary.Slice(r * d, d));
    }
    const util::BitVector small = w.Finish();
    const auto ind = algo.LoadIndicator(small, p, d, db.num_rows());
    const util::BitVector guess = inst.ReconstructPayload(*ind);
    const std::size_t ok =
        inst.PayloadBits() - guess.HammingDistance(payload);
    const double frac =
        static_cast<double>(ok) / static_cast<double>(inst.PayloadBits());
    table.AddRow({util::Table::Fmt(std::uint64_t{small.size()}),
                  util::Table::Fmt(std::uint64_t{rows_kept}),
                  util::Table::Fmt(std::uint64_t{ok}),
                  util::Table::Fmt(frac),
                  small.size() >= inst.PayloadBits() ? "above payload size"
                                                     : "below payload size"});
  }
  table.Print();
}

}  // namespace

int main() {
  Cliff(32, 2, 16);
  Cliff(64, 3, 100);
  Cliff(128, 2, 64);
  return 0;
}
