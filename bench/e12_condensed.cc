// E12 -- §1.1.1: the case against exact representations, measured.
//
// Plants a single frequent itemset of growing cardinality c and counts
// the full frequent family (2^c - 1), the closed family, and the maximal
// family -- the exponential-vs-condensed gap the paper uses to motivate
// sketches. A second table pits the *sizes* against each other: the
// exact-all listing vs the maximal listing vs a SUBSAMPLE summary that
// answers the same threshold queries approximately.

#include <cstdio>

#include "mining/condensed.h"
#include "sketch/subsample.h"
#include "util/combinatorics.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void BlowupCounts() {
  util::Table table(
      "exact representations blow up: planted itemset of cardinality c",
      {"c", "frequent itemsets", "closed", "maximal",
       "listing all (bits, >= log2 C(d,k) each)"});
  const std::size_t d = 24;
  for (const std::size_t c : {4u, 8u, 10u, 12u}) {
    core::Database db(8, d);
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < c; ++j) db.Set(i, j, true);
    }
    mining::AprioriOptions opt;
    opt.min_frequency = 0.5;
    opt.max_size = c;
    opt.max_results = std::size_t{1} << 20;
    const auto frequent = mining::MineDatabase(db, opt);
    const auto closed = mining::ClosedItemsets(frequent);
    const auto maximal = mining::MaximalItemsets(frequent);
    // Cost of listing each itemset explicitly: ~d bits per itemset.
    const std::size_t listing_bits = frequent.size() * d;
    table.AddRow({util::Table::Fmt(std::uint64_t{c}),
                  util::Table::Fmt(std::uint64_t{frequent.size()}),
                  util::Table::Fmt(std::uint64_t{closed.size()}),
                  util::Table::Fmt(std::uint64_t{maximal.size()}),
                  util::Table::Fmt(std::uint64_t{listing_bits})});
  }
  table.Print();
}

void RepresentationVsSketch() {
  util::Rng rng(19);
  // A database whose frequent family is large (one planted 12-itemset
  // plus noise); compare the exact listing with the sketch that answers
  // the same queries.
  const std::size_t d = 20, c = 12;
  core::Database db(1000, d);
  for (std::size_t i = 0; i < 1000; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if ((i % 2 == 0 && j < c) || rng.Bernoulli(0.05)) db.Set(i, j, true);
    }
  }
  mining::AprioriOptions opt;
  opt.min_frequency = 0.4;
  opt.max_size = c;
  opt.max_results = std::size_t{1} << 20;
  const auto frequent = mining::MineDatabase(db, opt);
  const auto maximal = mining::MaximalItemsets(frequent);

  core::SketchParams p;
  p.k = 3;  // typical query arity against the summary
  p.eps = 0.1;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kIndicator;
  sketch::SubsampleSketch algo;
  const auto summary = algo.Build(db, p, rng);

  util::Table table(
      "representation sizes on a database with a planted 12-itemset",
      {"representation", "entries", "bits"});
  table.AddRow({"all frequent itemsets (exact)",
                util::Table::Fmt(std::uint64_t{frequent.size()}),
                util::Table::Fmt(std::uint64_t{frequent.size() * d})});
  table.AddRow({"maximal itemsets (exact, no frequencies)",
                util::Table::Fmt(std::uint64_t{maximal.size()}),
                util::Table::Fmt(std::uint64_t{maximal.size() * d})});
  table.AddRow({"SUBSAMPLE summary (approximate, all k<=3 queries)",
                util::Table::Fmt(std::uint64_t{summary.size() / d}),
                util::Table::Fmt(std::uint64_t{summary.size()})});
  table.Print();
  std::printf(
      "the exact listing scales with 2^c; the sketch scales with d/eps\n"
      "regardless of how many itemsets happen to be frequent.\n");
}

}  // namespace

int main() {
  BlowupCounts();
  RepresentationVsSketch();
  return 0;
}
