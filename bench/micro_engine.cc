// Microbenchmarks: the Engine facade's batched query path vs N scalar
// calls.
//
// The headline pair is BM_EngineScalar10k vs BM_EngineBatched10k: the
// same 10,000 random 3-itemset queries against the same SUBSAMPLE
// sketch, answered by a loop of estimate() (per-query row scans of the
// decoded sample) vs one estimate_many() (one sample transpose shared
// by the batch, then a popcount of ANDed columns per query). Answers
// are bit-identical; only the work-sharing differs. The batched path
// is expected to win by well over the 1.5x acceptance bar.

#include <benchmark/benchmark.h>

#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

constexpr std::size_t kRows = 100000;
constexpr std::size_t kColumns = 64;
constexpr std::size_t kQueries = 10000;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

const Engine& SharedEngine() {
  static const Engine* engine = [] {
    util::Rng rng(71);
    const core::Database db =
        data::PowerLawBaskets(kRows, kColumns, 1.0, 0.5, 4, 3, 0.2, rng);
    auto built = Engine::Build(db, "SUBSAMPLE", Params(), rng);
    return new Engine(*std::move(built));
  }();
  return *engine;
}

std::vector<core::Itemset> Queries() {
  util::Rng rng(72);
  std::vector<core::Itemset> queries;
  queries.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    core::Itemset t(kColumns);
    while (t.size() < 3) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(kColumns)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

void BM_EngineScalar10k(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  const auto queries = Queries();
  std::vector<double> answers(queries.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      answers[i] = engine.estimate(queries[i]);
    }
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_EngineScalar10k)->Unit(benchmark::kMillisecond);

void BM_EngineBatched10k(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  const auto queries = Queries();
  std::vector<double> answers;
  for (auto _ : state) {
    engine.estimate_many(queries, &answers);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_EngineBatched10k)->Unit(benchmark::kMillisecond);

// Batched mining: the same Apriori run, scalar oracle vs level-batched.
void BM_EngineMineScalar(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  const auto estimator = sketch::LoadEstimator(engine.file());
  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mining::MineWithEstimator(*estimator, kColumns, opt));
  }
}
BENCHMARK(BM_EngineMineScalar)->Unit(benchmark::kMillisecond);

void BM_EngineMineBatched(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.mine(opt));
  }
}
BENCHMARK(BM_EngineMineBatched)->Unit(benchmark::kMillisecond);

}  // namespace
