// Microbenchmarks: the Engine facade's batched query path vs N scalar
// calls, now with a threads x batch-size sweep.
//
// Two modes:
//
//   micro_engine [gbench flags]      Google Benchmark registrations
//                                    (BM_EngineScalar10k vs
//                                    BM_EngineBatched10k etc).
//   micro_engine --json [out.json] [--threads 1,2,4,8] [--batch 1000,10000]
//                [--kernel all|scalar,avx2,avx512]
//                                    machine-readable perf sweep.
//
// The --json mode emits one JSON array with the stable schema
//   {"kernel": str, "threads": int, "batch": int, "ns_per_query": float}
// so successive PRs can diff perf (see BENCH_*.json in CI artifacts).
// Kernels:
//   scalar        loop of engine.estimate() over the batch (threads
//                 reported as 1: the scalar path never touches the pool)
//   batched       one engine.estimate_many() over the batch, fanned out
//                 across the default thread pool
//   mine_scalar   full Apriori run through the scalar oracle; batch is 0
//                 and ns_per_query is per full mine() call
//   mine_batched  full Apriori run through the level-batched,
//                 prefix-sharing driver; same reporting as mine_scalar
//
// --kernel repeats the whole sweep once per SIMD dispatch tier
// (util/kernels.h), with each row's kernel field suffixed "@tier", e.g.
// "batched@avx2"; "all" expands to every tier this build+CPU supports,
// and unsupported names in an explicit list are skipped with a warning.
// Without --kernel, rows keep their unsuffixed names and run on the
// default dispatch (IFSKETCH_KERNEL env or CPUID best).
//
// Answers are bit-identical across every kernel pairing, dispatch tier
// and thread count; only the work-sharing differs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "util/kernels.h"
#include "util/thread_pool.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

constexpr std::size_t kRows = 100000;
constexpr std::size_t kColumns = 64;
constexpr std::size_t kQueries = 10000;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

const Engine& SharedEngine() {
  static const Engine* engine = [] {
    util::Rng rng(71);
    const core::Database db =
        data::PowerLawBaskets(kRows, kColumns, 1.0, 0.5, 4, 3, 0.2, rng);
    auto built = Engine::Build(db, "SUBSAMPLE", Params(), rng);
    return new Engine(*std::move(built));
  }();
  return *engine;
}

std::vector<core::Itemset> Queries(std::size_t count) {
  util::Rng rng(72);
  std::vector<core::Itemset> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::Itemset t(kColumns);
    while (t.size() < 3) {
      t.Add(static_cast<std::size_t>(rng.UniformInt(kColumns)));
    }
    queries.push_back(std::move(t));
  }
  return queries;
}

// ------------------------------------------------- Google Benchmark mode

void BM_EngineScalar10k(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  const auto queries = Queries(kQueries);
  std::vector<double> answers(queries.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      answers[i] = engine.estimate(queries[i]);
    }
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_EngineScalar10k)->Unit(benchmark::kMillisecond);

// The batched path at several pool sizes; Arg is the thread count.
void BM_EngineBatched10k(benchmark::State& state) {
  util::ThreadPool::SetDefaultThreadCount(
      static_cast<std::size_t>(state.range(0)));
  const Engine& engine = SharedEngine();
  const auto queries = Queries(kQueries);
  std::vector<double> answers;
  for (auto _ : state) {
    engine.estimate_many(queries, &answers);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
  util::ThreadPool::SetDefaultThreadCount(0);
}
BENCHMARK(BM_EngineBatched10k)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Batched mining: the same Apriori run, scalar oracle vs level-batched.
void BM_EngineMineScalar(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  const auto estimator = sketch::LoadEstimator(engine.file());
  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mining::MineWithEstimator(*estimator, kColumns, opt));
  }
}
BENCHMARK(BM_EngineMineScalar)->Unit(benchmark::kMillisecond);

void BM_EngineMineBatched(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.mine(opt));
  }
}
BENCHMARK(BM_EngineMineBatched)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------ JSON sweep mode

struct SweepRow {
  std::string kernel;
  std::size_t threads;
  std::size_t batch;
  double ns_per_query;
};

// Times `body` (one "run" answering `per_run` queries) until at least
// ~100ms or 3 runs have elapsed, after one warmup, and returns ns per
// query.
template <typename Body>
double TimeNsPerQuery(std::size_t per_run, const Body& body) {
  using Clock = std::chrono::steady_clock;
  body();  // warmup: view materialization, page faults
  std::size_t runs = 0;
  const auto start = Clock::now();
  auto elapsed = start - start;
  while (runs < 3 ||
         elapsed < std::chrono::milliseconds(100)) {
    body();
    ++runs;
    elapsed = Clock::now() - start;
  }
  const double total_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count());
  return total_ns / static_cast<double>(runs) /
         static_cast<double>(per_run == 0 ? 1 : per_run);
}

std::vector<std::size_t> ParseList(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    const std::string token = csv.substr(pos, next - pos);
    const long v = std::strtol(token.c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  return out;
}

// One full sweep on the currently active dispatch tier; `suffix` is ""
// (legacy row names) or "@tier" when --kernel is sweeping tiers.
void SweepOnePass(const std::string& suffix,
                  const std::vector<std::size_t>& thread_counts,
                  const std::vector<std::size_t>& batch_sizes,
                  std::vector<SweepRow>* rows) {
  const Engine& engine = SharedEngine();
  for (std::size_t batch : batch_sizes) {
    const auto queries = Queries(batch);
    std::vector<double> answers(batch);
    // Scalar baseline: never touches the pool, so report it once.
    const double scalar_ns = TimeNsPerQuery(batch, [&] {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        answers[i] = engine.estimate(queries[i]);
      }
    });
    rows->push_back({"scalar" + suffix, 1, batch, scalar_ns});
    for (std::size_t threads : thread_counts) {
      util::ThreadPool::SetDefaultThreadCount(threads);
      const double ns = TimeNsPerQuery(
          batch, [&] { engine.estimate_many(queries, &answers); });
      rows->push_back({"batched" + suffix, threads, batch, ns});
    }
  }

  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;
  const auto estimator = sketch::LoadEstimator(engine.file());
  util::ThreadPool::SetDefaultThreadCount(1);
  rows->push_back({"mine_scalar" + suffix, 1, 0,
                   TimeNsPerQuery(0, [&] {
                     benchmark::DoNotOptimize(mining::MineWithEstimator(
                         *estimator, kColumns, opt));
                   })});
  for (std::size_t threads : thread_counts) {
    util::ThreadPool::SetDefaultThreadCount(threads);
    rows->push_back({"mine_batched" + suffix, threads, 0,
                     TimeNsPerQuery(0, [&] {
                       benchmark::DoNotOptimize(engine.mine(opt));
                     })});
  }
  util::ThreadPool::SetDefaultThreadCount(0);
}

int RunJsonSweep(const std::string& out_path,
                 const std::vector<std::size_t>& thread_counts,
                 const std::vector<std::size_t>& batch_sizes,
                 const std::vector<std::string>& kernel_tiers) {
  std::vector<SweepRow> rows;
  if (kernel_tiers.empty()) {
    SweepOnePass("", thread_counts, batch_sizes, &rows);
  } else {
    for (const std::string& tier : kernel_tiers) {
      if (!util::SetKernelTier(tier)) {
        std::fprintf(stderr,
                     "warning: kernel tier \"%s\" not usable on this "
                     "build/CPU; skipping\n",
                     tier.c_str());
        continue;
      }
      SweepOnePass("@" + tier, thread_counts, batch_sizes, &rows);
    }
    // Back to auto-dispatch for anything running after the sweep.
    util::SetKernelTier(
        util::SupportedKernelTiers().back());
  }

  std::FILE* out =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"ns_per_query\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].threads, rows[i].batch,
                 rows[i].ns_per_query, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}

// Splits a comma-separated tier list; "all" expands to every tier this
// build+CPU supports.
std::vector<std::string> ParseKernelList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    const std::string token = csv.substr(pos, next - pos);
    if (token == "all") {
      for (util::KernelTier tier : util::SupportedKernelTiers()) {
        out.emplace_back(util::KernelTierName(tier));
      }
    } else if (!token.empty()) {
      out.push_back(token);
    }
    pos = next + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<std::size_t> batch_sizes = {1000, 10000};
  std::vector<std::string> kernel_tiers;  // empty = default dispatch

  // Strip the sweep flags; everything left goes to Google Benchmark.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      thread_counts = ParseList(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      batch_sizes = ParseList(argv[++i]);
    } else if (arg == "--kernel" && i + 1 < argc) {
      kernel_tiers = ParseKernelList(argv[++i]);
      if (kernel_tiers.empty()) {
        std::fprintf(stderr,
                     "error: --kernel needs tier names "
                     "(all|scalar|avx2|avx512)\n");
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (json) {
    if (thread_counts.empty() || batch_sizes.empty()) {
      std::fprintf(stderr, "error: --threads/--batch need positive values\n");
      return 2;
    }
    return RunJsonSweep(out_path, thread_counts, batch_sizes, kernel_tiers);
  }
  int gb_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&gb_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
