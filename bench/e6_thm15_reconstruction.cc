// E6 -- Theorem 15 + Lemma 19: the tight indicator lower bound as an
// encoding experiment.
//
// Constant-eps stage: embed a random payload of v*d = Omega(kd log(d/k))
// bits, answer indicator queries at eps=1/50 (exact thresholds and a
// real SUBSAMPLE sketch), run the consistency decoder, report the
// fraction recovered (the proof's claim: >= 96%). ECC stage: wrap the
// payload in the concatenated code and show exact recovery of the
// message. Amplified stage: m = 1/(50 eps) tagged copies at sub-constant
// eps recover m times the payload.

#include <cstdio>

#include "ecc/concatenated.h"
#include "lowerbound/thm15.h"
#include "sketch/subsample.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

class ExactThresholdIndicator : public core::FrequencyIndicator {
 public:
  ExactThresholdIndicator(const core::Database* db, double eps)
      : db_(db), eps_(eps) {}
  bool IsFrequent(const core::Itemset& t) const override {
    return db_->Frequency(t) > eps_;  // valid rule: 1 iff f > eps
  }

 private:
  const core::Database* db_;
  double eps_;
};

void ConstantEpsStage() {
  util::Table table(
      "Theorem 15, eps=1/50 stage: payload recovery via Lemma 19 decoding",
      {"d", "k", "v", "payload bits", "oracle", "recovered", "fraction"});
  util::Rng rng(6);
  const std::size_t shapes[][2] = {{16, 2}, {32, 3}, {64, 3}, {128, 4}};
  for (const auto& [d, k] : shapes) {
    const lowerbound::Thm15Instance inst(d, k);
    const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
    const core::Database db = inst.BuildDatabase(payload);
    lowerbound::ConsistencyDecoderOptions options;

    // Oracle 1: exact threshold answers (a maximally-valid sketch).
    const ExactThresholdIndicator exact(&db, lowerbound::Thm15Instance::kEps);
    const util::BitVector rec1 =
        inst.ReconstructPayload(exact, options, rng);
    const std::size_t ok1 =
        inst.PayloadBits() - rec1.HammingDistance(payload);

    table.AddRow({util::Table::Fmt(std::uint64_t{d}),
                  util::Table::Fmt(std::uint64_t{k}),
                  util::Table::Fmt(std::uint64_t{inst.v()}),
                  util::Table::Fmt(std::uint64_t{inst.PayloadBits()}),
                  "exact threshold",
                  util::Table::Fmt(std::uint64_t{ok1}),
                  util::Table::Fmt(static_cast<double>(ok1) /
                                   static_cast<double>(inst.PayloadBits()))});

    // Oracle 2: a real SUBSAMPLE For-All indicator sketch.
    core::SketchParams p;
    p.k = k;
    p.eps = lowerbound::Thm15Instance::kEps;
    p.delta = 0.05;
    p.scope = core::Scope::kForAll;
    p.answer = core::Answer::kIndicator;
    sketch::SubsampleSketch algo;
    const auto summary = algo.Build(db, p, rng);
    const auto ind =
        algo.LoadIndicator(summary, p, db.num_columns(), db.num_rows());
    const util::BitVector rec2 =
        inst.ReconstructPayload(*ind, options, rng);
    const std::size_t ok2 =
        inst.PayloadBits() - rec2.HammingDistance(payload);
    table.AddRow({util::Table::Fmt(std::uint64_t{d}),
                  util::Table::Fmt(std::uint64_t{k}),
                  util::Table::Fmt(std::uint64_t{inst.v()}),
                  util::Table::Fmt(std::uint64_t{inst.PayloadBits()}),
                  "SUBSAMPLE sketch",
                  util::Table::Fmt(std::uint64_t{ok2}),
                  util::Table::Fmt(static_cast<double>(ok2) /
                                   static_cast<double>(inst.PayloadBits()))});
  }
  table.Print();
}

void EccStage() {
  util::Rng rng(7);
  util::Table table(
      "Theorem 15 ECC wrap: exact recovery of z = Omega(v d) message bits",
      {"d", "k", "payload bits", "message bits (rate 1/9)", "recovered",
       "exact"});
  const std::size_t shapes[][2] = {{256, 3}, {512, 3}};
  for (const auto& [d, k] : shapes) {
    const lowerbound::Thm15Instance inst(d, k);
    const ecc::ConcatenatedCode code = ecc::ConcatenatedCode::Small();
    const std::size_t capacity =
        code.CapacityForBudget(inst.PayloadBits());
    const util::BitVector message = rng.RandomBits(capacity);
    const util::BitVector codeword = code.Encode(message);
    util::BitVector payload(inst.PayloadBits());
    for (std::size_t i = 0; i < codeword.size(); ++i) {
      payload.Set(i, codeword.Get(i));
    }
    const core::Database db = inst.BuildDatabase(payload);
    const ExactThresholdIndicator oracle(&db,
                                         lowerbound::Thm15Instance::kEps);
    lowerbound::ConsistencyDecoderOptions options;
    const util::BitVector rec =
        inst.ReconstructPayload(oracle, options, rng);
    const auto decoded =
        code.Decode(rec.Slice(0, codeword.size()), capacity);
    const bool exact = decoded.has_value() && *decoded == message;
    table.AddRow({util::Table::Fmt(std::uint64_t{d}),
                  util::Table::Fmt(std::uint64_t{k}),
                  util::Table::Fmt(std::uint64_t{inst.PayloadBits()}),
                  util::Table::Fmt(std::uint64_t{capacity}),
                  util::Table::Fmt(std::uint64_t{
                      decoded.has_value()
                          ? capacity - decoded->HammingDistance(message)
                          : 0}),
                  exact ? "yes" : "NO"});
  }
  table.Print();
}

void AmplifiedStage() {
  util::Rng rng(8);
  util::Table table(
      "Theorem 15 amplification: m tagged copies at eps = 1/(50m)",
      {"d", "k", "m", "outer eps", "payload bits", "recovered",
       "fraction"});
  const std::size_t shapes[][3] = {{16, 3, 2}, {16, 3, 8}, {32, 3, 16},
                                   {16, 5, 4}};
  for (const auto& [d, k, m] : shapes) {
    const lowerbound::Thm15Amplified amp(d, k, m);
    const util::BitVector payload = rng.RandomBits(amp.PayloadBits());
    const core::Database db = amp.BuildDatabase(payload);
    const ExactThresholdIndicator oracle(&db, amp.OuterEps());
    lowerbound::ConsistencyDecoderOptions options;
    const util::BitVector rec =
        amp.ReconstructPayload(oracle, options, rng);
    const std::size_t ok = amp.PayloadBits() - rec.HammingDistance(payload);
    table.AddRow({util::Table::Fmt(std::uint64_t{d}),
                  util::Table::Fmt(std::uint64_t{k}),
                  util::Table::Fmt(std::uint64_t{m}),
                  util::Table::Fmt(amp.OuterEps()),
                  util::Table::Fmt(std::uint64_t{amp.PayloadBits()}),
                  util::Table::Fmt(std::uint64_t{ok}),
                  util::Table::Fmt(static_cast<double>(ok) /
                                   static_cast<double>(amp.PayloadBits()))});
  }
  table.Print();
}

}  // namespace

int main() {
  ConstantEpsStage();
  EccStage();
  AmplifiedStage();
  return 0;
}
