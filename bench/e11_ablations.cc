// E11 -- ablations of the design choices called out in DESIGN.md.
//
//  (a) Importance vs uniform sampling (the §5 future-work direction):
//      estimator error at equal summary size on skewed workloads.
//  (b) Consistency-decoder budget: Lemma 19 recovery vs probes-per-bit
//      in the large-v regime.
//  (c) ECC operating point: decode success vs error rate for outer-code
//      rates 1/3 (the default), 1/2 and 2/3 -- the radius/rate trade.

#include <cmath>
#include <cstdio>

#include "data/generators.h"
#include <bit>

#include "ecc/block_code.h"
#include "ecc/concatenated.h"
#include "engine.h"
#include "lowerbound/thm15.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void ImportanceVsUniform() {
  util::Rng rng(16);
  core::Database db = data::UniformRandom(8000, 16, 0.05, rng);
  const std::vector<std::size_t> pattern = {2, 5, 8, 11, 14};
  for (std::size_t i = 0; i < db.num_rows(); i += 100) {
    for (std::size_t a : pattern) db.Set(i, a, true);
  }

  util::Table table(
      "ablation (a): uniform vs importance sampling, equal size, "
      "sparse db with a rare dense itemset",
      {"query", "truth", "uniform mean |err|", "importance mean |err|"});
  core::SketchParams p;
  p.k = 5;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForEach;
  p.answer = core::Answer::kEstimator;
  const std::vector<std::vector<std::size_t>> queries = {
      {2, 5, 8, 11, 14}, {2, 5, 8}, {0}, {1, 3}};
  for (const auto& attrs : queries) {
    const core::Itemset t(16, attrs);
    const double truth = db.Frequency(t);
    util::RunningStat u_err, w_err;
    for (int trial = 0; trial < 40; ++trial) {
      // Both algorithms are addressed by registry name: the ablation is
      // literally a one-string swap through the Engine facade.
      const auto uniform = Engine::Build(db, "SUBSAMPLE", p, rng);
      const auto weighted = Engine::Build(db, "IMPORTANCE-SAMPLE", p, rng);
      IFSKETCH_CHECK(uniform.has_value() && weighted.has_value());
      u_err.Add(std::fabs(uniform->estimate(t) - truth));
      w_err.Add(std::fabs(weighted->estimate(t) - truth));
    }
    table.AddRow({t.ToString(), util::Table::Fmt(truth),
                  util::Table::Fmt(u_err.Mean()),
                  util::Table::Fmt(w_err.Mean())});
  }
  table.Print();
}

void DecoderBudget() {
  util::Rng rng(17);
  const std::size_t v = 120;
  util::Table table(
      "ablation (b): Lemma 19 consistency decoder, recovery vs "
      "probes-per-bit (v=120, exact threshold oracle)",
      {"probes per bit", "oracle queries", "bit errors", "error frac",
       "Lemma 19 budget v/25"});
  const util::BitVector truth = rng.RandomBits(v);
  auto answer = [&](const util::BitVector& s) {
    std::size_t dot = 0;
    for (std::size_t i = 0; i < v; ++i) {
      if (s.Get(i) && truth.Get(i)) ++dot;
    }
    return static_cast<double>(dot) / static_cast<double>(v) >
           lowerbound::Thm15Instance::kEps;
  };
  for (const std::size_t probes : {8u, 16u, 32u, 64u, 128u, 256u}) {
    lowerbound::ConsistencyDecoderOptions options;
    options.random_probes = probes;
    const util::BitVector decoded =
        lowerbound::DecodeColumnByConsistency(v, answer, options, rng);
    const std::size_t errors = decoded.HammingDistance(truth);
    table.AddRow(
        {util::Table::Fmt(std::uint64_t{probes}),
         util::Table::Fmt(std::uint64_t{v * probes * 2}),
         util::Table::Fmt(std::uint64_t{errors}),
         util::Table::Fmt(static_cast<double>(errors) /
                          static_cast<double>(v)),
         util::Table::Fmt(std::uint64_t{v / 25})});
  }
  table.Print();
}

// Bit positions of a minimum-weight nonzero inner codeword (the cheapest
// direction to push a symbol toward a different codeword).
std::vector<std::size_t> MinWeightFlipBits() {
  const ecc::InnerCode& inner = ecc::InnerCode::Instance();
  unsigned best_m = 1;
  int best_w = 25;
  for (unsigned m = 1; m < 256; ++m) {
    const int w = std::popcount(inner.Encode(static_cast<std::uint8_t>(m)));
    if (w < best_w) {
      best_w = w;
      best_m = m;
    }
  }
  std::vector<std::size_t> bits;
  const std::uint32_t cw = inner.Encode(static_cast<std::uint8_t>(best_m));
  for (std::size_t b = 0; b < 24; ++b) {
    if ((cw >> b) & 1u) bits.push_back(b);
  }
  return bits;
}

void EccOperatingPoint() {
  util::Rng rng(18);
  util::Table table(
      "ablation (c): concatenated-code operating points "
      "(10 trials each; 'ok' = exact decode)",
      {"outer code", "rate", "radius", "flips 2%", "flips 4%", "flips 6%"});
  struct Config {
    std::size_t n, k;
  };
  for (const Config cfg : {Config{60, 20}, Config{60, 30}, Config{60, 40}}) {
    const ecc::ConcatenatedCode code(cfg.n, cfg.k);
    const std::size_t bits = 2 * code.DataBitsPerBlock();
    std::vector<std::string> row = {
        "RS(" + std::to_string(cfg.n) + "," + std::to_string(cfg.k) + ")",
        util::Table::Fmt(code.Rate()), util::Table::Fmt(code.DecodingRadius())};
    for (const double rate : {0.02, 0.04, 0.06}) {
      int ok = 0;
      for (int trial = 0; trial < 10; ++trial) {
        const util::BitVector msg = rng.RandomBits(bits);
        util::BitVector cw = code.Encode(msg);
        // Adversarial placement: push each ruined inner symbol 4 bits
        // along a minimum-weight codeword direction, which lands it
        // strictly closer to a *wrong* codeword (guaranteed mis-decode
        // at 4 flips per ruined symbol).
        const auto budget =
            static_cast<std::size_t>(rate * static_cast<double>(cw.size()));
        const std::size_t ruined = budget / 4;
        const std::vector<std::size_t> flip_bits = MinWeightFlipBits();
        for (std::size_t sym = 0; sym < ruined; ++sym) {
          for (std::size_t b = 0; b < 4; ++b) {
            cw.Flip(sym * 24 + flip_bits[b]);
          }
        }
        const auto decoded = code.Decode(cw, bits);
        if (decoded.has_value() && *decoded == msg) ++ok;
      }
      row.push_back(std::to_string(ok) + "/10");
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  ImportanceVsUniform();
  DecoderBudget();
  EccOperatingPoint();
  return 0;
}
