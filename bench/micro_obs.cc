// micro_obs: the observability layer's overhead on the perf trajectory.
//
//   micro_obs --json [out.json] [--rounds 2000000] [--batch 256]
//             [--threads 4]
//
// The PR 8 contract this bench pins: instrumenting the query hot path
// (one request counter + one RequestTrace + one kernel StageTimer per
// batch, exactly what ServeConnection adds) moves steady-state query
// throughput by at most 2%. The bench FAILS (exit 1) when the steady
// kernel regresses more than the contract allows, so CI catches an
// accidentally fattened hot path. Histogram::Record is a handful of
// relaxed atomics -- single-digit ns on bare metal, low teens on
// virtualized CI hardware -- reported here but not gated (the absolute
// number tracks the host's atomic RMW latency, not our code).
//
// Kernels, in the repo's stable bench schema
//   {"kernel": str, "threads": int, "batch": int, "ns_per_query": float}:
//
//   record          Histogram::Record, single thread; ns per record
//   record_mt       Histogram::Record, --threads concurrent recorders
//                   (contended bucket cells); ns per record per thread
//   counter_add     sharded Counter::Add, --threads concurrent adders;
//                   ns per add per thread
//   counter_hot     Counter::Add, single thread (the uncontended cost)
//   snapshot        MetricsRegistry::Snapshot over a serving-sized
//                   registry (~60 metrics); ns per snapshot
//   render_text     RenderText over the same registry; ns per render
//   query_baseline  engine.estimate_many batches, uninstrumented
//   query_steady    the same batches under per-request instrumentation
//                   (request counter + RequestTrace + kernel timer);
//                   must be within 2% of query_baseline
//
// The record/counter numbers are per *operation*; batch reports how
// many operations the timed loop ran.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

core::SketchParams Params() {
  core::SketchParams p;
  p.k = 3;
  p.eps = 0.05;
  p.delta = 0.05;
  p.scope = core::Scope::kForAll;
  p.answer = core::Answer::kEstimator;
  return p;
}

double ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

struct Row {
  std::string kernel;
  std::size_t threads;
  std::size_t batch;
  double ns_per_query;
};

/// Populates `registry` with a serving-shaped metric set: op counters,
/// stage histograms, per-pod and per-sketch series -- what Snapshot and
/// RenderText walk on a real server.
void PopulateServingShape(obs::MetricsRegistry& registry) {
  util::Rng rng(99);
  for (const char* op :
       {"estimate", "are_frequent", "info", "refresh", "subscribe",
        "health", "stats"}) {
    registry.GetCounter(obs::LabeledName("serve_requests_total", "op", op))
        ->Add(static_cast<std::uint64_t>(rng.UniformInt(1000)));
    auto* h = registry.GetHistogram(
        obs::LabeledName("serve_request_ns", "op", op));
    for (int i = 0; i < 64; ++i) {
      h->Record(static_cast<std::uint64_t>(1000 + rng.UniformInt(1000000)));
    }
  }
  for (const char* stage :
       {"decode", "route", "acquire", "kernel", "encode"}) {
    std::string name = "serve_stage_";
    name += stage;
    name += "_ns";
    auto* h = registry.GetHistogram(name);
    for (int i = 0; i < 64; ++i) {
      h->Record(static_cast<std::uint64_t>(100 + rng.UniformInt(100000)));
    }
  }
  for (int pod = 0; pod < 4; ++pod) {
    const std::string p = std::to_string(pod);
    registry.GetGauge(obs::LabeledName("serve_pod_inflight", "pod", p));
    registry.GetCounter(
        obs::LabeledName("serve_pod_probes_total", "pod", p));
    for (int s = 0; s < 4; ++s) {
      std::string sketch = "s";
      sketch += std::to_string(s);
      registry
          .GetCounter(obs::LabeledName2("serve_sketch_queries_total", "pod",
                                        p, "sketch", sketch))
          ->Add(static_cast<std::uint64_t>(rng.UniformInt(10000)));
    }
  }
  registry.GetCounter("ingest_rows_total")->Add(123456);
  registry.GetGauge("ingest_ring_occupancy")->Set(17);
  registry.GetHistogram("ingest_publish_ns")->Record(2000000);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::size_t rounds = 2000000;
  std::size_t batch = 256;
  std::size_t threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') out_path = argv[++i];
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: micro_obs --json [out.json] [--rounds 2000000] "
                   "[--batch 256] [--threads 4]\n");
      return 2;
    }
  }
  if (rounds == 0 || batch == 0 || threads == 0 || threads > 256) {
    std::fprintf(stderr, "error: --rounds/--batch/--threads need sane "
                 "values\n");
    return 2;
  }
  std::vector<Row> rows;

  // -- record: single-thread Histogram::Record. The value pattern walks
  // buckets so the branch predictor cannot learn one index.
  {
    obs::Histogram h;
    util::Rng rng(1);
    std::vector<std::uint64_t> values(4096);
    for (auto& v : values) {
      v = static_cast<std::uint64_t>(rng.UniformInt(1 << 20));
    }
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < rounds; ++i) {
      h.Record(values[i & 4095]);
    }
    const double ns = ElapsedNs(start) / static_cast<double>(rounds);
    rows.push_back({"record", 1, rounds, ns});
    std::fprintf(stderr,
                 "record: %.2f ns/op (target: single digit on bare "
                 "metal)\n",
                 ns);
  }

  // -- record_mt: the same histogram under concurrent recorders.
  {
    obs::Histogram h;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    const std::size_t per_thread = rounds / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        util::Rng rng(t + 1);
        std::vector<std::uint64_t> values(4096);
        for (auto& v : values) {
          v = static_cast<std::uint64_t>(rng.UniformInt(1 << 20));
        }
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t i = 0; i < per_thread; ++i) {
          h.Record(values[i & 4095]);
        }
      });
    }
    const auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    rows.push_back({"record_mt", threads, per_thread,
                    ElapsedNs(start) / static_cast<double>(per_thread)});
  }

  // -- counter_hot / counter_add: sharded counter, alone and contended.
  {
    obs::Counter c;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < rounds; ++i) c.Add();
    rows.push_back({"counter_hot", 1, rounds,
                    ElapsedNs(start) / static_cast<double>(rounds)});
  }
  {
    obs::Counter c;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    const std::size_t per_thread = rounds / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t i = 0; i < per_thread; ++i) c.Add();
      });
    }
    const auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    rows.push_back({"counter_add", threads, per_thread,
                    ElapsedNs(start) / static_cast<double>(per_thread)});
  }

  // -- snapshot / render_text over a serving-shaped registry.
  {
    obs::MetricsRegistry registry;
    PopulateServingShape(registry);
    constexpr std::size_t kSnapRounds = 2000;
    const auto start = std::chrono::steady_clock::now();
    std::size_t total_metrics = 0;
    for (std::size_t i = 0; i < kSnapRounds; ++i) {
      total_metrics += registry.Snapshot().counters.size();
    }
    rows.push_back({"snapshot", 1, kSnapRounds,
                    ElapsedNs(start) / static_cast<double>(kSnapRounds)});
    const auto rstart = std::chrono::steady_clock::now();
    std::size_t total_bytes = 0;
    for (std::size_t i = 0; i < kSnapRounds; ++i) {
      total_bytes += registry.RenderText().size();
    }
    rows.push_back({"render_text", 1, kSnapRounds,
                    ElapsedNs(rstart) / static_cast<double>(kSnapRounds)});
    if (total_metrics == 0 || total_bytes == 0) return 1;  // keep honest
  }

  // -- query_baseline vs query_steady: the 2% contract. Same engine,
  // same queries; steady adds exactly the per-request instrumentation
  // ServeConnection introduces (op counter, RequestTrace, kernel
  // StageTimer). Three alternating passes each to cancel drift.
  double baseline_ns = 0.0;
  double steady_ns = 0.0;
  {
    util::Rng rng(7);
    const core::Database db =
        data::PowerLawBaskets(20000, 32, 1.0, 0.5, 4, 3, 0.2, rng);
    auto engine = Engine::Build(db, "SUBSAMPLE", Params(), rng);
    if (!engine.has_value()) {
      std::fprintf(stderr, "error: Engine::Build failed\n");
      return 1;
    }
    std::vector<core::Itemset> queries;
    for (std::size_t i = 0; i < batch; ++i) {
      core::Itemset t(32);
      while (t.size() < 3) {
        t.Add(static_cast<std::size_t>(rng.UniformInt(32)));
      }
      queries.push_back(std::move(t));
    }
    obs::MetricsRegistry registry;
    obs::Counter* requests = registry.GetCounter(
        obs::LabeledName("serve_requests_total", "op", "estimate"));
    const std::size_t query_rounds = 400;
    std::vector<double> answers;
    // Warm both paths once.
    engine->estimate_many(queries, &answers);
    double base_total = 0.0;
    double steady_total = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
      const auto b0 = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < query_rounds; ++r) {
        engine->estimate_many(queries, &answers);
      }
      base_total += ElapsedNs(b0);
      const auto s0 = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < query_rounds; ++r) {
        requests->Add();
        obs::RequestTrace trace(&registry, "estimate");
        obs::StageTimer kernel(obs::Stage::kKernel);
        engine->estimate_many(queries, &answers);
      }
      steady_total += ElapsedNs(s0);
    }
    const double denom =
        static_cast<double>(3 * query_rounds) * static_cast<double>(batch);
    baseline_ns = base_total / denom;
    steady_ns = steady_total / denom;
    rows.push_back({"query_baseline", 1, batch, baseline_ns});
    rows.push_back({"query_steady", 1, batch, steady_ns});
  }

  std::FILE* out =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "  {\"kernel\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"ns_per_query\": %.2f}%s\n",
                 rows[i].kernel.c_str(), rows[i].threads, rows[i].batch,
                 rows[i].ns_per_query, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);

  const double overhead =
      baseline_ns > 0.0 ? (steady_ns - baseline_ns) / baseline_ns : 0.0;
  std::fprintf(stderr,
               "query_steady: %.2f ns/query vs baseline %.2f ns/query "
               "(%+.2f%%, contract <= 2%%)\n",
               steady_ns, baseline_ns, 100.0 * overhead);
  if (overhead > 0.02) {
    std::fprintf(stderr,
                 "error: instrumentation overhead exceeds the 2%% "
                 "contract\n");
    return 1;
  }
  return 0;
}
