// E14 -- mining-substrate ablation: Apriori vs FP-Growth.
//
// Not a paper table; an engineering check on the mining substrate E9
// relies on. Both engines must return identical families; FP-Growth
// avoids candidate generation so it wins as the frequent family grows.
// Also compares uniform vs stratified sampling error on heterogeneous
// rows (the Lang-Liberty-Shmakov direction the conclusion points at).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "data/generators.h"
#include "mining/fpgrowth.h"
#include "sketch/stratified_sample.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

std::set<std::string> Keys(const std::vector<mining::FrequentItemset>& v) {
  std::set<std::string> out;
  for (const auto& fi : v) out.insert(fi.itemset.indicator().ToString());
  return out;
}

template <typename Fn>
std::pair<double, std::size_t> TimeMine(const Fn& fn) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = fn();
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return {ms, result.size()};
}

void Engines() {
  util::Rng rng(21);
  util::Table table("Apriori vs FP-Growth (identical outputs verified)",
                    {"n", "d", "min freq", "frequent", "apriori ms",
                     "fp-growth ms", "same family"});
  struct Shape {
    std::size_t n, d;
    double minf;
  };
  for (const Shape s : {Shape{5000, 24, 0.08}, Shape{20000, 32, 0.05},
                        Shape{20000, 48, 0.03}}) {
    const core::Database db =
        data::PowerLawBaskets(s.n, s.d, 1.0, 0.45, 5, 3, 0.2, rng);
    mining::AprioriOptions opt;
    opt.min_frequency = s.minf;
    opt.max_size = 4;
    std::vector<mining::FrequentItemset> apriori_out, fp_out;
    const auto [ams, acount] = TimeMine([&] {
      apriori_out = mining::MineDatabase(db, opt);
      return apriori_out;
    });
    const auto [fms, fcount] = TimeMine([&] {
      fp_out = mining::FpGrowth(db, opt);
      return fp_out;
    });
    (void)acount;
    (void)fcount;
    table.AddRow({util::Table::Fmt(std::uint64_t{s.n}),
                  util::Table::Fmt(std::uint64_t{s.d}),
                  util::Table::Fmt(s.minf),
                  util::Table::Fmt(std::uint64_t{apriori_out.size()}),
                  util::Table::Fmt(ams, 3), util::Table::Fmt(fms, 3),
                  Keys(apriori_out) == Keys(fp_out) ? "yes" : "NO"});
  }
  table.Print();
}

void StratifiedVsUniform() {
  util::Rng rng(22);
  core::Database db(20000, 16);
  for (std::size_t i = 0; i < db.num_rows(); ++i) {
    if (i % 50 == 0) {
      for (std::size_t j = 0; j < 12; ++j) db.Set(i, j, true);
    } else if (rng.Bernoulli(0.3)) {
      db.Set(i, rng.UniformInt(16), true);
    }
  }
  const core::Itemset t(16, {0, 1, 2, 3});
  const double truth = db.Frequency(t);
  util::Table table(
      "stratified vs uniform sampling on heterogeneous rows (LLS16 "
      "direction; query = the rare dense 4-itemset)",
      {"samples", "uniform mean |err|", "stratified(8) mean |err|",
       "ratio"});
  for (const std::size_t budget : {100u, 300u, 1000u}) {
    sketch::StratifiedSampler uniform(1), stratified(8);
    util::RunningStat eu, es;
    for (int trial = 0; trial < 40; ++trial) {
      eu.Add(std::fabs(
          uniform.Load(uniform.Build(db, budget, rng), 16)
              ->EstimateFrequency(t) -
          truth));
      es.Add(std::fabs(
          stratified.Load(stratified.Build(db, budget, rng), 16)
              ->EstimateFrequency(t) -
          truth));
    }
    table.AddRow({util::Table::Fmt(std::uint64_t{budget}),
                  util::Table::Fmt(eu.Mean()),
                  util::Table::Fmt(es.Mean()),
                  util::Table::Fmt(eu.Mean() /
                                   (es.Mean() > 0 ? es.Mean() : 1e-12))});
  }
  table.Print();
}

}  // namespace

int main() {
  Engines();
  StratifiedVsUniform();
  return 0;
}
