// E9 -- §1.1 motivation: frequent-itemset mining quality vs sketch size.
//
// Mines a power-law market-basket database from SUBSAMPLE summaries of
// decreasing size (coarsening eps) and reports precision/recall against
// exact mining, plus the compression ratio. The takeaway mirrors the
// paper: quality holds while the sample is >= the Lemma 9 size for the
// mining threshold, and there is no free lunch below it.

#include <cstdio>

#include "data/generators.h"
#include "engine.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void Sweep() {
  util::Rng rng(14);
  const std::size_t d = 32;
  const core::Database db =
      data::PowerLawBaskets(100000, d, 1.0, 0.45, 5, 3, 0.18, rng);

  mining::AprioriOptions opt;
  opt.min_frequency = 0.08;
  opt.max_size = 3;
  const auto reference = mining::MineDatabase(db, opt);

  util::Table table(
      "mining from a sketch: quality vs summary size "
      "(threshold 0.08, k<=3)",
      {"sketch eps", "summary bits", "% of db", "mined", "precision",
       "recall"});
  std::printf("reference: %zu frequent itemsets in the full database\n",
              reference.size());
  for (const double eps : {0.01, 0.02, 0.04, 0.08, 0.16, 0.32}) {
    core::SketchParams p;
    p.k = 3;
    p.eps = eps;
    p.delta = 0.05;
    p.scope = core::Scope::kForAll;
    p.answer = core::Answer::kEstimator;
    const auto engine = Engine::Build(db, "SUBSAMPLE", p, rng);
    const auto mined = engine->mine(opt);
    const auto q = mining::CompareMinedSets(reference, mined);
    table.AddRow({util::Table::Fmt(eps),
                  util::Table::Fmt(std::uint64_t{engine->summary_bits()}),
                  util::Table::Fmt(
                      100.0 * static_cast<double>(engine->summary_bits()) /
                      static_cast<double>(db.PayloadBits())),
                  util::Table::Fmt(std::uint64_t{q.mined_count}),
                  util::Table::Fmt(q.Precision()),
                  util::Table::Fmt(q.Recall())});
  }
  table.Print();
}

}  // namespace

int main() {
  Sweep();
  return 0;
}
