// E2 -- Lemma 9: empirical accuracy of SUBSAMPLE under all four
// semantics.
//
// For each (scope, answer) pair: builds many independent summaries of a
// fixed database, measures the empirical failure rate of the guarantee,
// and reports it against the target delta. A second table shows the
// sample count scaling in 1/eps (indicator) vs 1/eps^2 (estimator).

#include <cmath>
#include <cstdio>

#include "core/validate.h"
#include "data/generators.h"
#include "sketch/subsample.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace ifsketch;

void FailureRates() {
  util::Rng rng(2);
  const std::size_t d = 12;
  const core::Database db = data::PlantedItemsets(
      5000, d, {{{1, 5}, 0.3}, {{2, 8}, 0.12}, {{0, 9}, 0.04}}, 0.08, rng);
  util::Table table(
      "Lemma 9: empirical failure rate vs delta (eps=0.05, delta=0.1)",
      {"scope", "answer", "samples s", "trials", "failures", "rate",
       "target delta"});
  const double eps = 0.05, delta = 0.1;
  sketch::SubsampleSketch algo;
  for (core::Scope scope : {core::Scope::kForEach, core::Scope::kForAll}) {
    for (core::Answer answer :
         {core::Answer::kIndicator, core::Answer::kEstimator}) {
      core::SketchParams p;
      p.k = 2;
      p.eps = eps;
      p.delta = delta;
      p.scope = scope;
      p.answer = answer;
      const std::size_t s = sketch::SubsampleSketch::SampleCount(p, d);
      const int trials = scope == core::Scope::kForAll ? 40 : 300;
      int failures = 0;
      const core::Itemset fixed(d, {1, 5});
      for (int t = 0; t < trials; ++t) {
        const auto summary = algo.Build(db, p, rng);
        if (answer == core::Answer::kEstimator) {
          const auto est =
              algo.LoadEstimator(summary, p, d, db.num_rows());
          if (scope == core::Scope::kForAll) {
            if (!core::ValidateEstimatorExhaustive(db, *est, 2, eps)
                     .valid()) {
              ++failures;
            }
          } else {
            if (std::fabs(est->EstimateFrequency(fixed) -
                          db.Frequency(fixed)) > eps) {
              ++failures;
            }
          }
        } else {
          const auto ind =
              algo.LoadIndicator(summary, p, d, db.num_rows());
          if (scope == core::Scope::kForAll) {
            if (!core::ValidateIndicatorExhaustive(db, *ind, 2, eps)
                     .valid()) {
              ++failures;
            }
          } else {
            const double f = db.Frequency(fixed);
            const bool out = ind->IsFrequent(fixed);
            if ((f > eps && !out) || (f < eps / 2 && out)) ++failures;
          }
        }
      }
      table.AddRow({core::ToString(scope), core::ToString(answer),
                    util::Table::Fmt(std::uint64_t{s}),
                    util::Table::Fmt(std::int64_t{trials}),
                    util::Table::Fmt(std::int64_t{failures}),
                    util::Table::Fmt(static_cast<double>(failures) / trials),
                    util::Table::Fmt(delta)});
    }
  }
  table.Print();
}

void SampleScaling() {
  util::Table table(
      "sample count scaling: s(eps) and the eps^-1 vs eps^-2 separation",
      {"eps", "for-each ind", "for-each est", "est/ind", "for-all ind (d=64,k=3)",
       "for-all est (d=64,k=3)"});
  for (double eps : {0.1, 0.05, 0.02, 0.01, 0.005, 0.002}) {
    core::SketchParams pi, pe;
    pi.eps = pe.eps = eps;
    pi.delta = pe.delta = 0.05;
    pi.k = pe.k = 3;
    pi.scope = pe.scope = core::Scope::kForEach;
    pi.answer = core::Answer::kIndicator;
    pe.answer = core::Answer::kEstimator;
    const std::size_t si = sketch::SubsampleSketch::SampleCount(pi, 64);
    const std::size_t se = sketch::SubsampleSketch::SampleCount(pe, 64);
    core::SketchParams fi = pi, fe = pe;
    fi.scope = fe.scope = core::Scope::kForAll;
    table.AddRow({util::Table::Fmt(eps),
                  util::Table::Fmt(std::uint64_t{si}),
                  util::Table::Fmt(std::uint64_t{se}),
                  util::Table::Fmt(static_cast<double>(se) /
                                   static_cast<double>(si)),
                  util::Table::Fmt(std::uint64_t{
                      sketch::SubsampleSketch::SampleCount(fi, 64)}),
                  util::Table::Fmt(std::uint64_t{
                      sketch::SubsampleSketch::SampleCount(fe, 64)})});
  }
  table.Print();
}

}  // namespace

int main() {
  FailureRates();
  SampleScaling();
  return 0;
}
