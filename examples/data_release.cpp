// Efficient data release (the paper's §1.1.2 scenario).
//
// A census-like agency wants to publish marginal tables. Instead of the
// full 2^k-entry tables for every k-attribute set, it releases one small
// itemset summary; any user reconstructs any marginal cell from it.
// (Marginal cells over binary attributes are inclusion-exclusion sums of
// monotone conjunction frequencies -- for the one-hot encoded categorical
// attributes here, each cell IS an itemset frequency.)

#include <cstdio>

#include "data/generators.h"
#include "sketch/envelope.h"
#include "sketch/subsample.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace ifsketch;

  util::Rng rng(1790);  // first US census
  // Six categorical attributes, one-hot encoded to 20 binary columns:
  // age(5), income(4), region(4), education(3), sex(2), veteran(2).
  const std::vector<data::CategoricalAttribute> schema = {
      {5, {0.2, 0.3, 0.25, 0.15, 0.1}},
      {4, {0.4, 0.3, 0.2, 0.1}},
      {4, {}},
      {3, {0.5, 0.35, 0.15}},
      {2, {}},
      {2, {0.9, 0.1}},
  };
  const std::size_t population = 1000000;
  const core::Database db = data::CensusLike(population, schema, rng);
  std::printf("census table: %zu respondents, %zu binary attributes "
              "(%zu bits raw)\n",
              db.num_rows(), db.num_columns(), db.PayloadBits());

  core::SketchParams params;
  params.k = 3;  // 3-way marginals
  params.eps = 0.01;
  params.delta = 0.01;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;

  const auto envelope =
      sketch::NaiveEnvelope(db.num_rows(), db.num_columns(), params);
  std::printf("release options (bits): full-data=%zu all-answers=%zu "
              "sample=%zu\n",
              envelope.release_db_bits, envelope.release_answers_bits,
              envelope.subsample_bits);

  sketch::SubsampleSketch algo;
  const util::BitVector summary = algo.Build(db, params, rng);
  const auto est =
      algo.LoadEstimator(summary, params, db.num_columns(), db.num_rows());

  // A downstream user reconstructs a 3-way marginal: age x income x sex
  // (cells = one category from each attribute group).
  util::Table table("3-way marginal (age-bucket 0/1 x income 0/1 x sex)",
                    {"cell", "true count", "released estimate"});
  for (std::size_t age = 0; age < 2; ++age) {
    for (std::size_t income = 0; income < 2; ++income) {
      for (std::size_t sex = 0; sex < 2; ++sex) {
        const core::Itemset cell(db.num_columns(),
                                 {age, 5 + income, 16 + sex});
        const double truth = db.Frequency(cell);
        const double released = est->EstimateFrequency(cell);
        char name[32];
        std::snprintf(name, sizeof(name), "(%zu,%zu,%zu)", age, income,
                      sex);
        table.AddRow({name,
                      util::Table::Fmt(truth * population, 8),
                      util::Table::Fmt(released * population, 8)});
      }
    }
  }
  table.Print();
  std::printf("summary: %zu bits = %.4f%% of the raw table; every 3-way "
              "marginal cell within +/-%.0f persons\n",
              summary.size(),
              100.0 * static_cast<double>(summary.size()) /
                  static_cast<double>(db.PayloadBits()),
              params.eps * population);
  return 0;
}
