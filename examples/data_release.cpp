// Efficient data release (the paper's §1.1.2 scenario).
//
// A census-like agency wants to publish marginal tables. Instead of the
// full 2^k-entry tables for every k-attribute set, it releases one small
// itemset summary; any user reconstructs any marginal cell from it.
// (Marginal cells over binary attributes are inclusion-exclusion sums of
// monotone conjunction frequencies -- for the one-hot encoded categorical
// attributes here, each cell IS an itemset frequency.)

#include <cstdio>

#include "data/generators.h"
#include "engine.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace ifsketch;

  util::Rng rng(1790);  // first US census
  // Six categorical attributes, one-hot encoded to 20 binary columns:
  // age(5), income(4), region(4), education(3), sex(2), veteran(2).
  const std::vector<data::CategoricalAttribute> schema = {
      {5, {0.2, 0.3, 0.25, 0.15, 0.1}},
      {4, {0.4, 0.3, 0.2, 0.1}},
      {4, {}},
      {3, {0.5, 0.35, 0.15}},
      {2, {}},
      {2, {0.9, 0.1}},
  };
  const std::size_t population = 1000000;
  const core::Database db = data::CensusLike(population, schema, rng);
  std::printf("census table: %zu respondents, %zu binary attributes "
              "(%zu bits raw)\n",
              db.num_rows(), db.num_columns(), db.PayloadBits());

  core::SketchParams params;
  params.k = 3;  // 3-way marginals
  params.eps = 0.01;
  params.delta = 0.01;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;

  const auto engine = Engine::Build(db, "SUBSAMPLE", params, rng);
  if (!engine.has_value()) {
    std::fprintf(stderr, "SUBSAMPLE is not registered?\n");
    return 1;
  }
  const auto envelope = engine->envelope();
  std::printf("release options (bits): full-data=%zu all-answers=%zu "
              "sample=%zu\n",
              envelope.release_db_bits, envelope.release_answers_bits,
              envelope.subsample_bits);

  // A downstream user reconstructs a 3-way marginal: age x income x sex
  // (cells = one category from each attribute group). The eight cell
  // queries go through one batched estimate_many call.
  std::vector<core::Itemset> cells;
  std::vector<std::string> names;
  for (std::size_t age = 0; age < 2; ++age) {
    for (std::size_t income = 0; income < 2; ++income) {
      for (std::size_t sex = 0; sex < 2; ++sex) {
        cells.emplace_back(db.num_columns(),
                           std::vector<std::size_t>{age, 5 + income,
                                                    16 + sex});
        char name[32];
        std::snprintf(name, sizeof(name), "(%zu,%zu,%zu)", age, income,
                      sex);
        names.emplace_back(name);
      }
    }
  }
  std::vector<double> released;
  engine->estimate_many(cells, &released);

  util::Table table("3-way marginal (age-bucket 0/1 x income 0/1 x sex)",
                    {"cell", "true count", "released estimate"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.AddRow({names[i],
                  util::Table::Fmt(db.Frequency(cells[i]) * population, 8),
                  util::Table::Fmt(released[i] * population, 8)});
  }
  table.Print();
  std::printf("summary: %zu bits = %.4f%% of the raw table; every 3-way "
              "marginal cell within +/-%.0f persons\n",
              engine->summary_bits(),
              100.0 * static_cast<double>(engine->summary_bits()) /
                  static_cast<double>(db.PayloadBits()),
              params.eps * population);
  return 0;
}
