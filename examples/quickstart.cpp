// Quickstart: build a database, sketch it, query itemset frequencies.
//
// Demonstrates the Engine facade end to end on a small synthetic
// market-basket database: pick an algorithm by name, inspect the
// Theorem 12 envelope, save/reopen the sketch, and answer queries both
// one at a time and in bulk.

#include <cstdio>
#include <string>

#include "core/validate.h"
#include "data/generators.h"
#include "engine.h"
#include "util/random.h"

int main() {
  using namespace ifsketch;

  // A database of 50,000 shopping baskets over 24 items.
  util::Rng rng(2016);
  const core::Database db =
      data::PowerLawBaskets(50000, 24, 1.0, 0.5, 4, 3, 0.2, rng);
  std::printf("database: n=%zu rows, d=%zu attributes (%zu bits)\n",
              db.num_rows(), db.num_columns(), db.PayloadBits());

  // Ask for For-All estimator guarantees on 3-itemsets at eps=0.03.
  core::SketchParams params;
  params.k = 3;
  params.eps = 0.03;
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;

  // Build the SUBSAMPLE sketch (the paper's optimal algorithm) by name.
  const auto engine = Engine::Build(db, "SUBSAMPLE", params, rng);
  if (!engine.has_value()) {
    std::fprintf(stderr, "SUBSAMPLE is not registered?\n");
    return 1;
  }

  // info() prints the parameters plus the Theorem 12 envelope: which
  // naive sketch is smallest for this shape, and how this one compares.
  std::printf("%s", engine->info().c_str());

  // Round-trip through a file: any process can reopen the sketch and
  // query it knowing nothing but the path.
  const std::string path = "/tmp/ifsketch_quickstart.sk";
  if (!engine->Save(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const auto reopened = Engine::Open(path);
  if (!reopened.has_value()) {
    std::fprintf(stderr, "cannot reopen %s\n", path.c_str());
    return 1;
  }

  // Query it: the sketch answers without touching the database.
  std::vector<core::Itemset> queries;
  for (const auto& attrs :
       {std::vector<std::size_t>{0}, {0, 1}, {0, 1, 2}, {5, 9, 17}}) {
    queries.emplace_back(db.num_columns(), attrs);
  }
  std::vector<double> answers;
  reopened->estimate_many(queries, &answers);  // one shared column scan
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::printf("  f%-12s truth=%.4f  sketch=%.4f\n",
                queries[i].ToString().c_str(), db.Frequency(queries[i]),
                answers[i]);
  }

  // Verify the For-All contract on a random sample of itemsets.
  const auto estimator = sketch::LoadEstimator(reopened->file());
  const auto report =
      core::ValidateEstimatorSampled(db, *estimator, 3, params.eps,
                                     2000, rng);
  std::printf("validation: %zu itemsets checked, %zu violations, "
              "max error %.4f (eps=%.2f)\n",
              report.itemsets_checked, report.violations,
              report.max_abs_error, params.eps);
  return report.valid() ? 0 : 1;
}
