// Quickstart: build a database, sketch it, query itemset frequencies.
//
// Demonstrates the three naive sketches of §2 of the paper and the
// envelope selector, on a small synthetic market-basket database.

#include <cstdio>

#include "core/validate.h"
#include "data/generators.h"
#include "sketch/envelope.h"
#include "sketch/release_answers.h"
#include "sketch/release_db.h"
#include "sketch/subsample.h"
#include "util/random.h"

int main() {
  using namespace ifsketch;

  // A database of 50,000 shopping baskets over 24 items.
  util::Rng rng(2016);
  const core::Database db =
      data::PowerLawBaskets(50000, 24, 1.0, 0.5, 4, 3, 0.2, rng);
  std::printf("database: n=%zu rows, d=%zu attributes (%zu bits)\n",
              db.num_rows(), db.num_columns(), db.PayloadBits());

  // Ask for For-All estimator guarantees on 3-itemsets at eps=0.03.
  core::SketchParams params;
  params.k = 3;
  params.eps = 0.03;
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;

  // Theorem 12's envelope: which naive sketch is smallest here?
  const auto envelope =
      sketch::NaiveEnvelope(db.num_rows(), db.num_columns(), params);
  std::printf(
      "envelope: RELEASE-DB=%zu  RELEASE-ANSWERS=%zu  SUBSAMPLE=%zu "
      "-> winner %s\n",
      envelope.release_db_bits, envelope.release_answers_bits,
      envelope.subsample_bits, envelope.winner.c_str());

  // Build the SUBSAMPLE sketch (the paper's optimal algorithm).
  sketch::SubsampleSketch algo;
  const util::BitVector summary = algo.Build(db, params, rng);
  std::printf("subsample summary: %zu bits (%.1f%% of the database)\n",
              summary.size(),
              100.0 * static_cast<double>(summary.size()) /
                  static_cast<double>(db.PayloadBits()));

  // Query it: the sketch answers without touching the database.
  const auto estimator =
      algo.LoadEstimator(summary, params, db.num_columns(), db.num_rows());
  for (const auto& attrs :
       {std::vector<std::size_t>{0}, {0, 1}, {0, 1, 2}, {5, 9, 17}}) {
    const core::Itemset t(db.num_columns(), attrs);
    std::printf("  f%-12s truth=%.4f  sketch=%.4f\n", t.ToString().c_str(),
                db.Frequency(t), estimator->EstimateFrequency(t));
  }

  // Verify the For-All contract on a random sample of itemsets.
  const auto report =
      core::ValidateEstimatorSampled(db, *estimator, 3, params.eps,
                                     2000, rng);
  std::printf("validation: %zu itemsets checked, %zu violations, "
              "max error %.4f (eps=%.2f)\n",
              report.itemsets_checked, report.violations,
              report.max_abs_error, params.eps);
  return report.valid() ? 0 : 1;
}
