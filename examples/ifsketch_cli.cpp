// ifsketch_cli: sketch databases from the command line.
//
// An end-to-end tool over the ifsketch::Engine facade:
//   ifsketch_cli gen    <out.txt> <n> <d>              synthesize demo data
//   ifsketch_cli sketch <db.txt> <out.sk> <k> <eps> [--algo NAME]
//                                                      build a sketch
//   ifsketch_cli info   <in.sk>                        envelope report
//   ifsketch_cli query  <in.sk> <attr> [attr...]       estimate one itemset
//   ifsketch_cli mine   <in.sk> <min_freq> <max_size>  Apriori on the sketch
//
// `sketch --algo` accepts any registered algorithm name (RELEASE-DB,
// RELEASE-ANSWERS, SUBSAMPLE, SUBSAMPLE-WOR, IMPORTANCE-SAMPLE, or a
// composite like "MEDIAN-BOOST(SUBSAMPLE)"); the default is SUBSAMPLE.
// `query`, `mine` and `info` never need an algorithm argument -- the IFSK
// file names its producer and the registry resolves it. Databases are
// transaction-format text (see data/io.h); sketches are self-describing
// IFSK files (see sketch/sketch_file.h).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "data/generators.h"
#include "data/io.h"
#include "engine.h"
#include "sketch/sketch_file.h"
#include "util/kernels.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {

using namespace ifsketch;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ifsketch_cli gen    <out.txt> <n> <d>\n"
               "  ifsketch_cli sketch <db.txt> <out.sk> <k> <eps> "
               "[--algo NAME]\n"
               "  ifsketch_cli info   <in.sk>\n"
               "  ifsketch_cli query  <in.sk> <attr> [attr...]\n"
               "  ifsketch_cli mine   <in.sk> <min_freq> <max_size>\n"
               "\nflags:\n"
               "  --algo NAME     sketching algorithm for `sketch` "
               "(default SUBSAMPLE)\n"
               "  --seed S        Rng seed for `sketch` (default "
               "987654321); pass the\n"
               "                  server's ingest seed (1) to rebuild a "
               "served stream\n"
               "                  snapshot bit-identically\n"
               "  --threads N     thread-pool size for batched queries "
               "and mining\n"
               "                  (default: IFSKETCH_THREADS env var, "
               "else all cores)\n"
               "  --kernel TIER   bit-kernel dispatch tier: scalar, avx2 "
               "or avx512\n"
               "                  (default: IFSKETCH_KERNEL env var, else "
               "best for this CPU;\n"
               "                  answers are bit-identical at every "
               "tier)\n"
               "  --load MODE     sketch load path: auto (default; "
               "zero-copy mmap for\n"
               "                  arena v2 files, stream-copy for v1), "
               "mapped (require\n"
               "                  zero-copy), or copied (force the "
               "copying parser; both\n"
               "                  paths answer bit-identically -- `info` "
               "prints which one\n"
               "                  was used and the file format version)\n"
               "\nregistered algorithms (for --algo):\n");
  for (const auto& name : Engine::KnownAlgorithms()) {
    std::fprintf(stderr, "  %s\n", name.c_str());
  }
  return 2;
}

int UnknownAlgorithm(const std::string& name) {
  std::fprintf(stderr, "error: unknown algorithm \"%s\"\n", name.c_str());
  std::fprintf(stderr, "registered algorithms:\n");
  for (const auto& known : Engine::KnownAlgorithms()) {
    std::fprintf(stderr, "  %s\n", known.c_str());
  }
  return 1;
}

int Gen(const std::string& path, std::size_t n, std::size_t d) {
  util::Rng rng(12345);
  const core::Database db =
      data::PowerLawBaskets(n, d, 1.0, 0.5, 4, 3, 0.2, rng);
  if (!data::SaveTransactionsFile(path, db)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu transactions over %zu items to %s\n", n, d,
              path.c_str());
  return 0;
}

int Sketch(const std::string& db_path, const std::string& out_path,
           std::size_t k, double eps, const std::string& algo_name,
           std::uint64_t seed) {
  const auto db = data::LoadTransactionsFile(db_path);
  if (!db.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", db_path.c_str());
    return 1;
  }
  core::SketchParams params;
  params.k = k;
  params.eps = eps;
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;
  if (!core::ValidSketchParams(params)) {
    std::fprintf(stderr,
                 "error: invalid parameters (need k >= 1 and eps in "
                 "(0, 1]; got k=%zu, eps=%g)\n",
                 k, eps);
    return 1;
  }
  util::Rng rng(seed);
  const auto engine = Engine::Build(*db, algo_name, params, rng);
  if (!engine.has_value()) return UnknownAlgorithm(algo_name);
  // Atomic replace + CRC32C integrity trailer: a sketch built by hand is
  // a durable artifact, so bit rot in it should be detected at load.
  std::string save_error;
  if (!engine->Save(out_path, &save_error, sketch::SketchChecksum::kCrc32c)) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", out_path.c_str(),
                 save_error.c_str());
    return 1;
  }
  std::printf("%s sketched %zu x %zu database (%zu bits) into %zu bits "
              "(%.2f%%): %s\n",
              engine->algorithm().c_str(), engine->n(), engine->d(),
              engine->n() * engine->d(), engine->summary_bits(),
              100.0 * static_cast<double>(engine->summary_bits()) /
                  static_cast<double>(engine->n() * engine->d()),
              out_path.c_str());
  return 0;
}

// Exit codes for sketch-opening failures, so scripts can tell a wrong
// path (retry with the right one) from a damaged file (re-sketch):
//   3  file missing / unreadable
//   4  file readable but not a valid IFSK sketch (malformed, unknown
//      producer, or payload/shape mismatch)
constexpr int kExitNotFound = 3;
constexpr int kExitMalformed = 4;

// How `query`/`info`/`mine` acquire sketch bytes (--load): the zero-copy
// mapped path, the copying stream parser, or whichever fits the file.
Engine::LoadMode g_load_mode = Engine::LoadMode::kAuto;

/// Reopens a sketch file through the registry, reporting each failure
/// stage distinctly: missing file, malformed bytes (with the byte offset
/// of the first invalid field), unknown producer, corrupt payload. On
/// nullopt, *exit_code holds the exit status.
std::optional<Engine> OpenOrReport(const std::string& sk_path,
                                   int* exit_code) {
  std::ifstream in(sk_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s (no such file or not "
                 "readable)\n",
                 sk_path.c_str());
    *exit_code = kExitNotFound;
    return std::nullopt;
  }
  in.close();
  std::string error;
  auto engine = Engine::Open(sk_path, g_load_mode, &error);
  if (!engine.has_value()) {
    // Engine::Open's diagnostic carries the path and, for validation
    // failures, the byte offset of the first bad field.
    std::fprintf(stderr, "error: %s\n", error.c_str());
    if (error.find("unknown algorithm") != std::string::npos) {
      std::fprintf(stderr, "registered algorithms:\n");
      for (const auto& known : Engine::KnownAlgorithms()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
    }
    *exit_code = kExitMalformed;
    return std::nullopt;
  }
  *exit_code = 0;
  return engine;
}

int Info(const std::string& sk_path) {
  int exit_code = 0;
  const auto engine = OpenOrReport(sk_path, &exit_code);
  if (!engine.has_value()) return exit_code;
  std::printf("%s", engine->info().c_str());
  return 0;
}

int Query(const std::string& sk_path,
          const std::vector<std::size_t>& attrs) {
  int exit_code = 0;
  const auto engine = OpenOrReport(sk_path, &exit_code);
  if (!engine.has_value()) return exit_code;
  for (std::size_t a : attrs) {
    if (a >= engine->d()) {
      std::fprintf(stderr, "error: attribute %zu out of range (d=%zu)\n",
                   a, engine->d());
      return 1;
    }
  }
  const core::Itemset t(engine->d(), attrs);
  if (!engine->supports_query_size(t.size())) {
    std::fprintf(stderr,
                 "error: %s only answers %zu-itemset queries (this one "
                 "has %zu attributes)\n",
                 engine->algorithm().c_str(), engine->params().k, t.size());
    return 1;
  }
  if (engine->params().answer == core::Answer::kIndicator) {
    // Indicator-flavored summaries carry threshold bits, not
    // frequencies; answer with the bit they do carry.
    std::printf("f%s %s %g  (indicator sketch, prob %.2f, via %s)\n",
                t.ToString().c_str(),
                engine->is_frequent(t) ? ">" : "<=", engine->params().eps,
                1.0 - engine->params().delta, engine->algorithm().c_str());
    return 0;
  }
  std::printf("f%s ~= %.5f  (+/- %.4f with prob %.2f, via %s)\n",
              t.ToString().c_str(), engine->estimate(t),
              engine->params().eps, 1.0 - engine->params().delta,
              engine->algorithm().c_str());
  return 0;
}

int Mine(const std::string& sk_path, double min_freq,
         std::size_t max_size) {
  int exit_code = 0;
  const auto engine = OpenOrReport(sk_path, &exit_code);
  if (!engine.has_value()) return exit_code;
  if (engine->params().answer != core::Answer::kEstimator) {
    std::fprintf(stderr,
                 "error: mining needs frequency estimates, but this is "
                 "an indicator-flavored sketch (threshold bits only)\n");
    return 1;
  }
  mining::AprioriOptions opt;
  opt.min_frequency = min_freq;
  opt.max_size = max_size;
  for (std::size_t size = 1; size <= max_size; ++size) {
    if (!engine->supports_query_size(size)) {
      std::fprintf(stderr,
                   "error: %s only answers %zu-itemset queries; mining "
                   "needs every size 1..%zu (use a sample-based sketch, "
                   "e.g. SUBSAMPLE or RELEASE-DB)\n",
                   engine->algorithm().c_str(), engine->params().k,
                   max_size);
      return 1;
    }
  }
  const auto mined = engine->mine(opt);
  std::printf("%zu frequent itemsets at threshold %.3f (from the %s "
              "sketch only):\n",
              mined.size(), min_freq, engine->algorithm().c_str());
  for (const auto& fi : mined) {
    std::printf("  %-24s %.4f\n", fi.itemset.ToString().c_str(),
                fi.frequency);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string cmd = args[0];

  // Extract the recognized flags wherever they appear.
  std::string algo_name = "SUBSAMPLE";
  std::uint64_t seed = 987654321;  // the historical `sketch` default
  for (std::size_t i = 1; i + 1 < args.size();) {
    if (args[i] == "--algo") {
      algo_name = args[i + 1];
    } else if (args[i] == "--seed") {
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(args[i + 1].c_str(), &end, 10);
      if (args[i + 1].empty() || end == nullptr || *end != '\0') {
        std::fprintf(stderr,
                     "error: --seed needs an unsigned integer (got "
                     "\"%s\")\n",
                     args[i + 1].c_str());
        return 2;
      }
      seed = static_cast<std::uint64_t>(v);
    } else if (args[i] == "--threads") {
      char* end = nullptr;
      const long threads = std::strtol(args[i + 1].c_str(), &end, 10);
      if (threads <= 0 || threads > 4096 || end == nullptr || *end != '\0') {
        std::fprintf(stderr,
                     "error: --threads needs a positive count (got \"%s\")\n",
                     args[i + 1].c_str());
        return 2;
      }
      util::ThreadPool::SetDefaultThreadCount(
          static_cast<std::size_t>(threads));
    } else if (args[i] == "--load") {
      if (args[i + 1] == "auto") {
        g_load_mode = Engine::LoadMode::kAuto;
      } else if (args[i + 1] == "mapped") {
        g_load_mode = Engine::LoadMode::kMapped;
      } else if (args[i + 1] == "copied") {
        g_load_mode = Engine::LoadMode::kCopied;
      } else {
        std::fprintf(stderr,
                     "error: --load must be auto, mapped or copied (got "
                     "\"%s\")\n",
                     args[i + 1].c_str());
        return 2;
      }
    } else if (args[i] == "--kernel") {
      if (!util::SetKernelTier(args[i + 1])) {
        std::fprintf(stderr,
                     "error: kernel tier \"%s\" is unknown or not usable "
                     "on this build/CPU; usable tiers:\n",
                     args[i + 1].c_str());
        for (util::KernelTier tier : util::SupportedKernelTiers()) {
          std::fprintf(stderr, "  %s\n", util::KernelTierName(tier));
        }
        return 2;
      }
    } else {
      ++i;
      continue;
    }
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
  }
  // Anything flag-shaped still left is a typo or a flag missing its
  // value; reject it rather than letting strtoull parse it as 0 (which
  // would silently query attribute 0).
  for (const std::string& a : args) {
    if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unrecognized or valueless flag \"%s\"\n",
                   a.c_str());
      return 2;
    }
  }

  if (cmd == "gen" && args.size() == 4) {
    return Gen(args[1], std::strtoull(args[2].c_str(), nullptr, 10),
               std::strtoull(args[3].c_str(), nullptr, 10));
  }
  if (cmd == "sketch" && args.size() == 5) {
    return Sketch(args[1], args[2],
                  std::strtoull(args[3].c_str(), nullptr, 10),
                  std::strtod(args[4].c_str(), nullptr), algo_name, seed);
  }
  if (cmd == "info" && args.size() == 2) {
    return Info(args[1]);
  }
  if (cmd == "query" && args.size() >= 3) {
    std::vector<std::size_t> attrs;
    for (std::size_t i = 2; i < args.size(); ++i) {
      attrs.push_back(std::strtoull(args[i].c_str(), nullptr, 10));
    }
    return Query(args[1], attrs);
  }
  if (cmd == "mine" && args.size() == 4) {
    return Mine(args[1], std::strtod(args[2].c_str(), nullptr),
                std::strtoull(args[3].c_str(), nullptr, 10));
  }
  return Usage();
}
