// ifsketch_cli: sketch databases from the command line.
//
// A minimal end-to-end tool over the library's file formats:
//   ifsketch_cli gen    <out.txt> <n> <d>              synthesize demo data
//   ifsketch_cli sketch <db.txt> <out.sk> <k> <eps>    build a SUBSAMPLE
//   ifsketch_cli query  <in.sk> <attr> [attr...]       estimate one itemset
//   ifsketch_cli mine   <in.sk> <min_freq> <max_size>  Apriori on the sketch
//
// Databases are transaction-format text (see data/io.h); sketches are
// self-describing IFSK files (see sketch/sketch_file.h).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/generators.h"
#include "data/io.h"
#include "mining/apriori.h"
#include "sketch/sketch_file.h"
#include "sketch/subsample.h"
#include "util/random.h"

namespace {

using namespace ifsketch;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ifsketch_cli gen    <out.txt> <n> <d>\n"
               "  ifsketch_cli sketch <db.txt> <out.sk> <k> <eps>\n"
               "  ifsketch_cli query  <in.sk> <attr> [attr...]\n"
               "  ifsketch_cli mine   <in.sk> <min_freq> <max_size>\n");
  return 2;
}

int Gen(const std::string& path, std::size_t n, std::size_t d) {
  util::Rng rng(12345);
  const core::Database db =
      data::PowerLawBaskets(n, d, 1.0, 0.5, 4, 3, 0.2, rng);
  if (!data::SaveTransactionsFile(path, db)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu transactions over %zu items to %s\n", n, d,
              path.c_str());
  return 0;
}

int Sketch(const std::string& db_path, const std::string& out_path,
           std::size_t k, double eps) {
  const auto db = data::LoadTransactionsFile(db_path);
  if (!db.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", db_path.c_str());
    return 1;
  }
  sketch::SubsampleSketch algo;
  sketch::SketchFile file;
  file.algorithm = algo.name();
  file.params.k = k;
  file.params.eps = eps;
  file.params.delta = 0.05;
  file.params.scope = core::Scope::kForAll;
  file.params.answer = core::Answer::kEstimator;
  file.n = db->num_rows();
  file.d = db->num_columns();
  util::Rng rng(987654321);
  file.summary = algo.Build(*db, file.params, rng);
  if (!sketch::SaveSketchFile(out_path, file)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("sketched %zu x %zu database (%zu bits) into %zu bits "
              "(%.2f%%): %s\n",
              file.n, file.d, file.n * file.d, file.summary.size(),
              100.0 * static_cast<double>(file.summary.size()) /
                  static_cast<double>(file.n * file.d),
              out_path.c_str());
  return 0;
}

int Query(const std::string& sk_path,
          const std::vector<std::size_t>& attrs) {
  const auto file = sketch::LoadSketchFile(sk_path);
  if (!file.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", sk_path.c_str());
    return 1;
  }
  for (std::size_t a : attrs) {
    if (a >= file->d) {
      std::fprintf(stderr, "error: attribute %zu out of range (d=%zu)\n",
                   a, file->d);
      return 1;
    }
  }
  sketch::SubsampleSketch algo;
  const auto est =
      algo.LoadEstimator(file->summary, file->params, file->d, file->n);
  const core::Itemset t(file->d, attrs);
  std::printf("f%s ~= %.5f  (+/- %.4f with prob %.2f)\n",
              t.ToString().c_str(), est->EstimateFrequency(t),
              file->params.eps, 1.0 - file->params.delta);
  return 0;
}

int Mine(const std::string& sk_path, double min_freq,
         std::size_t max_size) {
  const auto file = sketch::LoadSketchFile(sk_path);
  if (!file.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", sk_path.c_str());
    return 1;
  }
  sketch::SubsampleSketch algo;
  const auto est =
      algo.LoadEstimator(file->summary, file->params, file->d, file->n);
  mining::AprioriOptions opt;
  opt.min_frequency = min_freq;
  opt.max_size = max_size;
  const auto mined = mining::MineWithEstimator(*est, file->d, opt);
  std::printf("%zu frequent itemsets at threshold %.3f (from the sketch "
              "only):\n",
              mined.size(), min_freq);
  for (const auto& fi : mined) {
    std::printf("  %-24s %.4f\n", fi.itemset.ToString().c_str(),
                fi.frequency);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  const std::string& cmd = args[0];
  if (cmd == "gen" && args.size() == 4) {
    return Gen(args[1], std::strtoull(args[2].c_str(), nullptr, 10),
               std::strtoull(args[3].c_str(), nullptr, 10));
  }
  if (cmd == "sketch" && args.size() == 5) {
    return Sketch(args[1], args[2],
                  std::strtoull(args[3].c_str(), nullptr, 10),
                  std::strtod(args[4].c_str(), nullptr));
  }
  if (cmd == "query" && args.size() >= 3) {
    std::vector<std::size_t> attrs;
    for (std::size_t i = 2; i < args.size(); ++i) {
      attrs.push_back(std::strtoull(args[i].c_str(), nullptr, 10));
    }
    return Query(args[1], attrs);
  }
  if (cmd == "mine" && args.size() == 4) {
    return Mine(args[1], std::strtod(args[2].c_str(), nullptr),
                std::strtoull(args[3].c_str(), nullptr, 10));
  }
  return Usage();
}
