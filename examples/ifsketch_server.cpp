// ifsketch_server: serve IFSK sketch files over loopback TCP.
//
//   ifsketch_server --sketch NAME=PATH [--sketch NAME=PATH ...]
//                   [--port P] [--pods N] [--replicas R] [--budget BYTES]
//                   [--threads T] [--loop-threads L] [--max-conns C]
//                   [--stats-every SECS]
//                   [--ingest NAME [--ingest-file PATH] [--ingest-algo A]
//                    [--ingest-every N] [--ingest-save PATH]
//                    [--ingest-k K] [--ingest-eps E]
//                    [--wal-dir DIR] [--wal-sync POLICY] [--wal-every N]]
//
// Registers each NAME=PATH on its owning replica set (serve/router.h
// places every name on R of the N pods by rendezvous hashing), listens
// on 127.0.0.1:P (0 = ephemeral), and serves the wire protocol
// (serve/protocol.h) through the epoll reactor (serve/reactor.h):
// --loop-threads event loops multiplex every connection, clients may
// pipeline many request frames per connection (replies come back in
// request order), and heavy work runs on the dispatch pool + query
// thread pool so a loop never blocks. Concurrent requests for the same
// sketch coalesce into fused Engine batches in the router, and a
// replica that fails is failed over transparently. Sketch files load on
// first use and stay resident under the per-pod byte budget (LRU
// eviction).
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// in-flight connections drain, the --ingest-save snapshot (if any) is
// written, and the per-sketch stats dump before a clean exit 0. A second
// signal force-quits immediately with exit 130. (When --ingest reads
// stdin and the pipe never closes, the feeder keeps the process alive
// until EOF or a second signal.)
//
// --ingest NAME additionally serves a live stream sketch: transaction
// rows (the data/io.h text format: first line d, then one row of
// space-separated attribute indices per line) are read from
// --ingest-file (default stdin) and fed through the ingest subsystem
// (src/ingest/), which publishes a snapshot to the pod every
// --ingest-every rows plus a final one at EOF; clients follow along
// with the refresh/subscribe opcodes. --ingest-save writes the last
// published snapshot to an IFSK file at exit (atomic replace + CRC32C
// integrity trailer) so scripts can diff served answers against
// ifsketch_cli on the same snapshot.
//
// --wal-dir DIR makes the ingest durable (PR 10): every row is logged
// write-ahead to DIR and the builder state is checkpointed at each
// snapshot, so a server killed at any point and restarted on the same
// DIR recovers a prefix of the stream and serves it bit-identically to
// a run that never crashed (feed the restart a stream holding just the
// width header to serve the recovered state without new rows).
// --wal-sync bounds what a power loss can cost: every_record /
// every_n (with --wal-every) / on_snapshot (default; a plain kill -9
// still only loses the in-process append buffer).
//
// Observability (PR 8): every request/stage/pod/ingest metric lands in
// the process-wide obs::MetricsRegistry (see src/obs/metrics.h for the
// full reference table). --stats-every SECS dumps the registry to
// stderr every SECS seconds, one line per metric (RenderLines format),
// and SIGUSR1 triggers the same dump on demand at any time. Clients can
// instead pull the registry over the wire with the STATS opcode
// (`ifsketch_client stats`).
//
// Prints exactly one "listening on <port>" line to stdout once the
// socket is bound, so scripts (CI smoke) can scrape the ephemeral port.
// --max-conns C caps CONCURRENT connections: accepts past the cap are
// refused at accept time (counted in serve_conns_rejected_total) and
// the slot frees when a connection closes; the default is uncapped.
// The process serves until signalled. Answers are bit-identical to
// querying the same files locally with ifsketch_cli.

#include <pthread.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ingest/ingest.h"
#include "obs/metrics.h"
#include "serve/pod.h"
#include "serve/reactor.h"
#include "serve/router.h"
#include "serve/server.h"
#include "util/thread_pool.h"

namespace {

using namespace ifsketch;

int Usage() {
  std::fprintf(
      stderr,
      "usage: ifsketch_server --sketch NAME=PATH [--sketch NAME=PATH ...]\n"
      "                       [--port P] [--pods N] [--replicas R]\n"
      "                       [--budget BYTES] [--threads T] "
      "[--loop-threads L] [--max-conns C]\n"
      "\n"
      "  --sketch NAME=PATH  register an IFSK file under NAME "
      "(repeatable)\n"
      "  --port P            TCP port on 127.0.0.1 (default 0 = "
      "ephemeral)\n"
      "  --pods N            shard count (default 1)\n"
      "  --replicas R        replicas per sketch name, <= pods "
      "(default 1)\n"
      "  --budget BYTES      per-pod resident byte budget (default "
      "unlimited)\n"
      "  --threads T         query thread-pool size (default: "
      "IFSKETCH_THREADS, else all cores)\n"
      "  --loop-threads L    epoll event-loop threads (default: all "
      "cores)\n"
      "  --max-conns C       concurrent connection cap; accepts past it "
      "are refused (default: uncapped)\n"
      "  --stats-every SECS  dump all metrics to stderr every SECS "
      "seconds (SIGUSR1 dumps on demand)\n"
      "  --ingest NAME       serve a live stream sketch under NAME\n"
      "  --ingest-file PATH  transaction stream (default: stdin)\n"
      "  --ingest-algo A     streaming algorithm (default: "
      "STREAM-SUBSAMPLE)\n"
      "  --ingest-every N    rows per published snapshot (default: "
      "10000)\n"
      "  --ingest-save PATH  write the last snapshot as IFSK at exit\n"
      "  --ingest-k K        query cardinality parameter (default: 2)\n"
      "  --ingest-eps E      precision parameter (default: 0.05)\n"
      "  --wal-dir DIR       write-ahead log directory for --ingest; a\n"
      "                      restart on the same DIR recovers the stream\n"
      "                      prefix and serves it bit-identically\n"
      "  --wal-sync POLICY   every_record | every_n | on_snapshot "
      "(default: on_snapshot)\n"
      "  --wal-every N       appends per fsync under every_n "
      "(default: 64)\n");
  return 2;
}

bool ParseEps(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(v > 0.0) || !(v <= 1.0)) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseSize(const std::string& s, std::size_t* out) {
  // strtoull silently wraps negatives ("-1" -> ULLONG_MAX, which would
  // alias kUnlimited); only plain digits are a size.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

/// One-line-per-metric registry dump to stderr, fenced so interleaved
/// log lines cannot be mistaken for metrics by scripts.
void DumpMetrics(const char* why) {
  const std::string lines = obs::MetricsRegistry::Default().RenderLines();
  std::fprintf(stderr, "--- metrics (%s) ---\n%s--- end metrics ---\n", why,
               lines.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> sketches;
  std::size_t port = 0;
  std::size_t pods = 1;
  std::size_t replicas = 1;
  std::size_t budget = serve::SketchPod::kUnlimited;
  std::size_t max_conns = 0;     // concurrent cap; 0 = unlimited
  std::size_t loop_threads = 0;  // 0 = all cores
  std::size_t stats_every = 0;   // seconds; 0 = no periodic dump
  std::string ingest_name;
  std::string ingest_file;  // empty or "-" = stdin
  std::string ingest_algo = "STREAM-SUBSAMPLE";
  std::string ingest_save;
  std::size_t ingest_every = 10000;
  std::size_t ingest_k = 2;
  double ingest_eps = 0.05;
  std::string wal_dir;
  ingest::WalSyncPolicy wal_sync = ingest::WalSyncPolicy::kOnSnapshot;
  std::size_t wal_every = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sketch" && has_value) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "error: --sketch needs NAME=PATH (got %s)\n",
                     spec.c_str());
        return 2;
      }
      sketches.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--port" && has_value) {
      if (!ParseSize(argv[++i], &port) || port > 65535) return Usage();
    } else if (arg == "--pods" && has_value) {
      if (!ParseSize(argv[++i], &pods) || pods == 0 || pods > 1024) {
        return Usage();
      }
    } else if (arg == "--replicas" && has_value) {
      if (!ParseSize(argv[++i], &replicas) || replicas == 0 ||
          replicas > 1024) {
        return Usage();
      }
    } else if (arg == "--budget" && has_value) {
      if (!ParseSize(argv[++i], &budget) || budget == 0) return Usage();
    } else if (arg == "--threads" && has_value) {
      std::size_t threads = 0;
      if (!ParseSize(argv[++i], &threads) || threads == 0 ||
          threads > 4096) {
        return Usage();
      }
      util::ThreadPool::SetDefaultThreadCount(threads);
    } else if (arg == "--loop-threads" && has_value) {
      if (!ParseSize(argv[++i], &loop_threads) || loop_threads == 0 ||
          loop_threads > 1024) {
        return Usage();
      }
    } else if (arg == "--max-conns" && has_value) {
      if (!ParseSize(argv[++i], &max_conns) || max_conns == 0) {
        return Usage();
      }
    } else if (arg == "--stats-every" && has_value) {
      if (!ParseSize(argv[++i], &stats_every) || stats_every == 0) {
        return Usage();
      }
    } else if (arg == "--ingest" && has_value) {
      ingest_name = argv[++i];
      if (ingest_name.empty()) return Usage();
    } else if (arg == "--ingest-file" && has_value) {
      ingest_file = argv[++i];
    } else if (arg == "--ingest-algo" && has_value) {
      ingest_algo = argv[++i];
    } else if (arg == "--ingest-every" && has_value) {
      if (!ParseSize(argv[++i], &ingest_every) || ingest_every == 0) {
        return Usage();
      }
    } else if (arg == "--ingest-save" && has_value) {
      ingest_save = argv[++i];
    } else if (arg == "--ingest-k" && has_value) {
      if (!ParseSize(argv[++i], &ingest_k) || ingest_k == 0) return Usage();
    } else if (arg == "--ingest-eps" && has_value) {
      if (!ParseEps(argv[++i], &ingest_eps)) return Usage();
    } else if (arg == "--wal-dir" && has_value) {
      wal_dir = argv[++i];
      if (wal_dir.empty()) return Usage();
    } else if (arg == "--wal-sync" && has_value) {
      if (!ingest::ParseWalSyncPolicy(argv[++i], &wal_sync)) return Usage();
    } else if (arg == "--wal-every" && has_value) {
      if (!ParseSize(argv[++i], &wal_every) || wal_every == 0) {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (sketches.empty() && ingest_name.empty()) return Usage();
  if (replicas > pods) {
    std::fprintf(stderr, "error: --replicas %zu exceeds --pods %zu\n",
                 replicas, pods);
    return 2;
  }
  if (!wal_dir.empty() && ingest_name.empty()) {
    std::fprintf(stderr, "error: --wal-dir requires --ingest\n");
    return 2;
  }

  // Take SIGINT/SIGTERM out of every thread's delivery set before any
  // thread exists; a dedicated sigwait thread (below) is then the only
  // place signals are ever handled, so the handler logic runs in a
  // normal thread context instead of an async-signal one.
  // SIGUSR1 rides along in the same set: the sigwait thread answers it
  // with a metrics dump instead of a shutdown.
  sigset_t sigset;
  sigemptyset(&sigset);
  sigaddset(&sigset, SIGINT);
  sigaddset(&sigset, SIGTERM);
  sigaddset(&sigset, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &sigset, nullptr);

  std::vector<std::shared_ptr<serve::SketchPod>> pod_vec;
  pod_vec.reserve(pods);
  for (std::size_t i = 0; i < pods; ++i) {
    pod_vec.push_back(std::make_shared<serve::SketchPod>(budget));
  }
  serve::RouterOptions router_options;
  router_options.replication = replicas;
  serve::Router router(std::move(pod_vec), router_options);
  // Validate EVERY registration before binding the port: an operator
  // restarting a server with a long --sketch roster learns about all the
  // bad entries (duplicate names, unopenable or corrupt files) in one
  // pass, instead of one failure per restart.
  std::size_t bad_registrations = 0;
  for (const auto& [name, path] : sketches) {
    if (!router.AddSketch(name, path)) {
      std::fprintf(stderr, "error: --sketch %s=%s: duplicate sketch name\n",
                   name.c_str(), path.c_str());
      ++bad_registrations;
      continue;
    }
    // Load eagerly so a bad path fails at startup, not at first query.
    if (router.Acquire(name) == nullptr) {
      std::string detail;
      (void)Engine::Open(path, &detail);  // re-open solely for the reason
      std::fprintf(stderr, "error: --sketch %s=%s: %s\n", name.c_str(),
                   path.c_str(), detail.c_str());
      ++bad_registrations;
      continue;
    }
    std::fprintf(stderr, "serving \"%s\" from %s on shard %zu (x%zu)\n",
                 name.c_str(), path.c_str(), router.ShardOf(name),
                 router.ReplicasOf(name).size());
  }
  if (!ingest_name.empty()) {
    if (!router.AddStream(ingest_name)) {
      std::fprintf(stderr, "error: --ingest %s: duplicate sketch name\n",
                   ingest_name.c_str());
      ++bad_registrations;
    } else {
      std::fprintf(stderr, "ingesting \"%s\" (%s) on shard %zu\n",
                   ingest_name.c_str(), ingest_algo.c_str(),
                   router.ShardOf(ingest_name));
    }
  }
  if (bad_registrations > 0) {
    std::fprintf(stderr, "error: %zu invalid sketch registration%s\n",
                 bad_registrations, bad_registrations == 1 ? "" : "s");
    return 1;
  }

  serve::ReactorOptions reactor_options;
  reactor_options.loop_threads = loop_threads;
  reactor_options.max_connections = max_conns;
  serve::ReactorServer reactor(router, reactor_options);
  if (!reactor.Listen(static_cast<std::uint16_t>(port))) {
    std::fprintf(stderr, "error: cannot listen on 127.0.0.1:%zu\n", port);
    return 1;
  }
  std::printf("listening on %u\n", reactor.port());
  std::fflush(stdout);

  // Graceful shutdown: the sigwait thread turns the first SIGINT/SIGTERM
  // into "stop accepting" (reactor.StopAccepting() refuses new
  // connections, the WaitDrained below returns once the open ones
  // finish) and a second signal into an immediate _exit(130) for wedged
  // drains.
  std::atomic<bool> exiting{false};
  std::atomic<bool> stopping{false};
  std::thread sig_thread([&] {
    int sig = 0;
    while (sigwait(&sigset, &sig) == 0) {
      if (exiting.load()) return;  // end-of-main wakeup, not a request
      if (sig == SIGUSR1) {
        DumpMetrics("SIGUSR1");
        continue;
      }
      if (stopping.exchange(true)) _exit(130);  // second signal
      std::fprintf(stderr,
                   "caught signal %d: draining (signal again to force "
                   "quit)\n",
                   sig);
      reactor.StopAccepting();
    }
  });

  // Periodic metrics dump: a plain timer thread on a condition variable
  // so shutdown can wake it immediately instead of waiting out the last
  // interval.
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_thread;
  if (stats_every > 0) {
    stats_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(stats_mu);
      while (!stats_cv.wait_for(lock, std::chrono::seconds(stats_every),
                                [&] { return stats_stop; })) {
        lock.unlock();
        DumpMetrics("periodic");
        lock.lock();
      }
    });
  }

  // The feeder thread owns the whole ingest pipeline: it reads the
  // stream header (d), creates the IngestService, pushes every row and
  // drains at EOF. Snapshots land in the router via Publish (waking
  // subscribers) and the latest one is kept for --ingest-save. Started
  // after the listening line so scripts can already scrape the port
  // while the stream is arriving.
  std::mutex snapshot_mu;
  std::shared_ptr<const Engine> last_snapshot;
  std::thread feeder;
  if (!ingest_name.empty()) {
    feeder = std::thread([&] {
      std::ifstream stream_file;
      std::istream* in = &std::cin;
      if (!ingest_file.empty() && ingest_file != "-") {
        stream_file.open(ingest_file);
        if (!stream_file) {
          std::fprintf(stderr, "error: cannot open ingest stream %s\n",
                       ingest_file.c_str());
          return;
        }
        in = &stream_file;
      }
      std::string line;
      long long dv = -1;
      if (!std::getline(*in, line) ||
          !(std::istringstream(line) >> dv) || dv <= 0) {
        std::fprintf(stderr, "error: ingest stream has no width header\n");
        return;
      }
      const std::size_t d = static_cast<std::size_t>(dv);

      ingest::IngestOptions options;
      options.algorithm = ingest_algo;
      options.d = d;
      options.rows_per_snapshot = ingest_every;
      options.params.k = ingest_k;
      options.params.eps = ingest_eps;
      options.params.delta = 0.05;
      options.params.scope = core::Scope::kForAll;
      options.params.answer = core::Answer::kEstimator;
      options.wal_dir = wal_dir;
      options.wal_sync = wal_sync;
      options.wal_sync_every = wal_every;
      std::string error;
      auto service = ingest::IngestService::Create(
          options,
          [&](std::shared_ptr<const Engine> engine, std::uint64_t rows) {
            {
              std::lock_guard<std::mutex> lock(snapshot_mu);
              last_snapshot = engine;
            }
            const std::uint64_t epoch =
                router.Publish(ingest_name, std::move(engine), rows);
            std::fprintf(stderr, "published \"%s\" epoch %llu (%llu rows)\n",
                         ingest_name.c_str(),
                         static_cast<unsigned long long>(epoch),
                         static_cast<unsigned long long>(rows));
          },
          &error);
      if (service == nullptr) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return;
      }
      if (!wal_dir.empty()) {
        const ingest::WalRecovery& rec = service->recovery();
        std::fprintf(
            stderr,
            "recovered \"%s\" from %s: %llu rows (checkpoint %llu, "
            "replayed %llu, truncated %llu bytes)\n",
            ingest_name.c_str(), wal_dir.c_str(),
            static_cast<unsigned long long>(rec.rows),
            static_cast<unsigned long long>(rec.checkpoint_rows),
            static_cast<unsigned long long>(rec.replayed_rows),
            static_cast<unsigned long long>(rec.truncated_bytes));
      }
      while (std::getline(*in, line)) {
        util::BitVector row(d);
        std::istringstream ls(line);
        long long a = 0;
        bool ok = true;
        while (ls >> a) {
          if (a < 0 || static_cast<std::size_t>(a) >= d) {
            ok = false;
            break;
          }
          row.Set(static_cast<std::size_t>(a), true);
        }
        // Same garbage rule as data::ReadTransactions: a clean line ends
        // in extraction-failure-at-eof.
        if (!ok || !ls.eof()) {
          std::fprintf(stderr, "warning: skipping malformed ingest row\n");
          continue;
        }
        service->Push(std::move(row));
      }
      service->Finish();
      std::fprintf(stderr, "ingest done: %llu rows, %llu snapshots\n",
                   static_cast<unsigned long long>(service->rows_ingested()),
                   static_cast<unsigned long long>(
                       service->snapshots_published()));
    });
  }

  // The reactor's loop threads serve every connection from here on;
  // main just waits for the shutdown sequence (StopAccepting from the
  // sigwait thread, then the open connections closing). The wait keeps
  // `router` (and this frame) alive until the last connection drains.
  reactor.WaitDrained();
  if (feeder.joinable()) feeder.join();

  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      stats_stop = true;
    }
    stats_cv.notify_all();
    stats_thread.join();
  }

  // Retire the signal thread: mark the run as over, then poke it out of
  // sigwait with one of the signals it is already watching.
  exiting.store(true);
  pthread_kill(sig_thread.native_handle(), SIGTERM);
  sig_thread.join();

  if (!ingest_save.empty()) {
    std::lock_guard<std::mutex> lock(snapshot_mu);
    if (last_snapshot == nullptr) {
      std::fprintf(stderr, "error: no snapshot was published to save\n");
      return 1;
    }
    // Durable copy: atomic replace plus the CRC32C integrity trailer, so
    // a later serve of this file can detect bit rot.
    std::string save_error;
    if (!last_snapshot->Save(ingest_save, &save_error,
                             sketch::SketchChecksum::kCrc32c)) {
      std::fprintf(stderr, "error: cannot write %s: %s\n",
                   ingest_save.c_str(), save_error.c_str());
      return 1;
    }
    std::fprintf(stderr, "saved last snapshot to %s\n", ingest_save.c_str());
  }

  if (stats_every > 0) DumpMetrics("exit");
  for (const auto& pod : router.pods()) {
    for (const auto& s : pod->stats()) {
      std::fprintf(stderr,
                   "stats %s: hits=%llu loads=%llu evictions=%llu "
                   "queries=%llu publishes=%llu resident=%zuB\n",
                   s.name.c_str(), static_cast<unsigned long long>(s.hits),
                   static_cast<unsigned long long>(s.loads),
                   static_cast<unsigned long long>(s.evictions),
                   static_cast<unsigned long long>(s.queries),
                   static_cast<unsigned long long>(s.publishes),
                   s.resident_bytes);
    }
  }
  return 0;
}
