// ifsketch_server: serve IFSK sketch files over loopback TCP.
//
//   ifsketch_server --sketch NAME=PATH [--sketch NAME=PATH ...]
//                   [--port P] [--pods N] [--budget BYTES]
//                   [--threads T] [--max-conns C]
//
// Registers each NAME=PATH on its owning shard (serve/router.h routes by
// name hash across N pods), listens on 127.0.0.1:P (0 = ephemeral), and
// serves the wire protocol (serve/protocol.h) with one thread per
// accepted connection; concurrent requests for the same sketch coalesce
// into fused Engine batches in the router. Sketch files load on first
// use and stay resident under the per-pod byte budget (LRU eviction).
//
// Prints exactly one "listening on <port>" line to stdout once the
// socket is bound, so scripts (CI smoke) can scrape the ephemeral port.
// --max-conns exits after serving C connections (also for scripts);
// the default serves until killed. Answers are bit-identical to querying
// the same files locally with ifsketch_cli.

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/pod.h"
#include "serve/router.h"
#include "serve/server.h"
#include "util/thread_pool.h"

namespace {

using namespace ifsketch;

int Usage() {
  std::fprintf(
      stderr,
      "usage: ifsketch_server --sketch NAME=PATH [--sketch NAME=PATH ...]\n"
      "                       [--port P] [--pods N] [--budget BYTES]\n"
      "                       [--threads T] [--max-conns C]\n"
      "\n"
      "  --sketch NAME=PATH  register an IFSK file under NAME "
      "(repeatable)\n"
      "  --port P            TCP port on 127.0.0.1 (default 0 = "
      "ephemeral)\n"
      "  --pods N            shard count (default 1)\n"
      "  --budget BYTES      per-pod resident byte budget (default "
      "unlimited)\n"
      "  --threads T         query thread-pool size (default: "
      "IFSKETCH_THREADS, else all cores)\n"
      "  --max-conns C       exit after serving C connections (default: "
      "serve forever)\n");
  return 2;
}

bool ParseSize(const std::string& s, std::size_t* out) {
  // strtoull silently wraps negatives ("-1" -> ULLONG_MAX, which would
  // alias kUnlimited); only plain digits are a size.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> sketches;
  std::size_t port = 0;
  std::size_t pods = 1;
  std::size_t budget = serve::SketchPod::kUnlimited;
  std::size_t max_conns = 0;  // 0 = unlimited

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sketch" && has_value) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "error: --sketch needs NAME=PATH (got %s)\n",
                     spec.c_str());
        return 2;
      }
      sketches.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--port" && has_value) {
      if (!ParseSize(argv[++i], &port) || port > 65535) return Usage();
    } else if (arg == "--pods" && has_value) {
      if (!ParseSize(argv[++i], &pods) || pods == 0 || pods > 1024) {
        return Usage();
      }
    } else if (arg == "--budget" && has_value) {
      if (!ParseSize(argv[++i], &budget) || budget == 0) return Usage();
    } else if (arg == "--threads" && has_value) {
      std::size_t threads = 0;
      if (!ParseSize(argv[++i], &threads) || threads == 0 ||
          threads > 4096) {
        return Usage();
      }
      util::ThreadPool::SetDefaultThreadCount(threads);
    } else if (arg == "--max-conns" && has_value) {
      if (!ParseSize(argv[++i], &max_conns) || max_conns == 0) {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (sketches.empty()) return Usage();

  std::vector<std::shared_ptr<serve::SketchPod>> pod_vec;
  pod_vec.reserve(pods);
  for (std::size_t i = 0; i < pods; ++i) {
    pod_vec.push_back(std::make_shared<serve::SketchPod>(budget));
  }
  serve::Router router(std::move(pod_vec));
  for (const auto& [name, path] : sketches) {
    if (!router.AddSketch(name, path)) {
      std::fprintf(stderr, "error: duplicate sketch name \"%s\"\n",
                   name.c_str());
      return 1;
    }
    // Load eagerly so a bad path fails at startup, not at first query.
    if (router.Acquire(name) == nullptr) {
      std::fprintf(stderr,
                   "error: cannot open %s (missing or not a valid IFSK "
                   "sketch file)\n",
                   path.c_str());
      return 1;
    }
    std::fprintf(stderr, "serving \"%s\" from %s on shard %zu\n",
                 name.c_str(), path.c_str(), router.ShardOf(name));
  }

  serve::TcpListener listener;
  if (!listener.Listen(static_cast<std::uint16_t>(port))) {
    std::fprintf(stderr, "error: cannot listen on 127.0.0.1:%zu\n", port);
    return 1;
  }
  std::printf("listening on %u\n", listener.port());
  std::fflush(stdout);

  // Connection threads are detached and tracked by a counter rather
  // than collected in a vector: the serve-forever mode must not grow a
  // handle per connection ever accepted. The final wait keeps `router`
  // (and this frame) alive until the last connection drains.
  std::mutex conn_mu;
  std::condition_variable conn_cv;
  std::size_t active_conns = 0;
  for (std::size_t served = 0; max_conns == 0 || served < max_conns;
       ++served) {
    auto transport = listener.Accept();
    if (transport == nullptr) break;
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      ++active_conns;
    }
    std::thread([&, t = std::move(transport)]() mutable {
      serve::ServeConnection(router, *t);
      std::lock_guard<std::mutex> lock(conn_mu);
      --active_conns;
      conn_cv.notify_all();
    }).detach();
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu);
    conn_cv.wait(lock, [&] { return active_conns == 0; });
  }

  for (const auto& pod : router.pods()) {
    for (const auto& s : pod->stats()) {
      std::fprintf(stderr,
                   "stats %s: hits=%llu loads=%llu evictions=%llu "
                   "queries=%llu resident=%zuB\n",
                   s.name.c_str(), static_cast<unsigned long long>(s.hits),
                   static_cast<unsigned long long>(s.loads),
                   static_cast<unsigned long long>(s.evictions),
                   static_cast<unsigned long long>(s.queries),
                   s.resident_bytes);
    }
  }
  return 0;
}
