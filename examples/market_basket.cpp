// Market-basket mining on a sketch (the paper's §1.1 motivation).
//
// An analyst wants frequent itemsets and association rules but keeps
// only a SUBSAMPLE summary instead of the full transaction log. This
// example mines both the database and the sketch and compares results.

#include <cstdio>

#include "data/generators.h"
#include "mining/apriori.h"
#include "sketch/subsample.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace ifsketch;

  util::Rng rng(7);
  // 200k baskets, 40 items, Zipfian popularity plus 5 planted bundles.
  const core::Database db =
      data::PowerLawBaskets(200000, 40, 1.1, 0.4, 5, 3, 0.15, rng);

  mining::AprioriOptions opt;
  opt.min_frequency = 0.05;
  opt.max_size = 3;

  // Ground truth from the full database (expensive: repeated scans).
  const auto reference = mining::MineDatabase(db, opt);

  // Sketch once; mine from the summary (no further database access).
  core::SketchParams params;
  params.k = 3;
  params.eps = 0.0125;  // a quarter of the mining threshold
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;
  sketch::SubsampleSketch algo;
  const util::BitVector summary = algo.Build(db, params, rng);
  const auto estimator =
      algo.LoadEstimator(summary, params, db.num_columns(), db.num_rows());
  const auto mined =
      mining::MineWithEstimator(*estimator, db.num_columns(), opt);

  const mining::MiningQuality quality =
      mining::CompareMinedSets(reference, mined);
  std::printf("database: %zu x %zu (%zu bits); summary: %zu bits (%.2f%%)\n",
              db.num_rows(), db.num_columns(), db.PayloadBits(),
              summary.size(),
              100.0 * static_cast<double>(summary.size()) /
                  static_cast<double>(db.PayloadBits()));
  std::printf("frequent itemsets: %zu true, %zu mined from sketch, "
              "precision=%.3f recall=%.3f\n",
              quality.reference_count, quality.mined_count,
              quality.Precision(), quality.Recall());

  // Association rules straight off the sketch.
  const auto rules = mining::ExtractRules(
      mined,
      [&](const core::Itemset& t) {
        return estimator->EstimateFrequency(t);
      },
      0.6);
  util::Table table("top association rules (from the sketch)",
                    {"rule", "support", "confidence"});
  std::size_t shown = 0;
  for (const auto& rule : rules) {
    if (shown++ >= 10) break;
    table.AddRow({rule.lhs.ToString() + " => " + rule.rhs.ToString(),
                  util::Table::Fmt(rule.support),
                  util::Table::Fmt(rule.confidence)});
  }
  table.Print();
  return (quality.Recall() > 0.8 && quality.Precision() > 0.8) ? 0 : 1;
}
