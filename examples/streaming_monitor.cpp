// Streaming frequent-itemset monitoring (the §1.2 streaming discussion).
//
// Event logs arrive one row at a time; a reservoir builder maintains a
// SUBSAMPLE-equivalent summary in one pass and constant memory. The paper
// proves no streaming algorithm can maintain asymptotically less state
// than this sample, so this is also the right baseline architecture.

#include <cstdio>

#include "data/generators.h"
#include "mining/apriori.h"
#include "sketch/reservoir.h"
#include "sketch/subsample.h"
#include "util/random.h"

int main() {
  using namespace ifsketch;

  util::Rng rng(99);
  const std::size_t d = 20;
  core::SketchParams params;
  params.k = 2;
  params.eps = 0.02;
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;

  sketch::ReservoirBuilder builder(d, params, rng);
  std::printf("reservoir: %zu slots x %zu bits = %zu bits of state\n",
              builder.slot_count(), d, builder.slot_count() * d);

  // Simulate a drifting event stream: the hot itemset changes mid-stream.
  core::Database full_log(0, d);
  util::Rng gen(123);
  const data::Planted phase1{{1, 4}, 0.3};
  const data::Planted phase2{{7, 9}, 0.4};
  for (int phase = 0; phase < 2; ++phase) {
    const core::Database chunk = data::PlantedItemsets(
        150000, d, {phase == 0 ? phase1 : phase2}, 0.05, gen);
    for (std::size_t i = 0; i < chunk.num_rows(); ++i) {
      builder.Observe(chunk.Row(i));
      full_log.AppendRow(chunk.Row(i));
    }
    // Snapshot the summary at the end of each phase.
    sketch::SubsampleSketch loader;
    const auto est = loader.LoadEstimator(builder.Finish(), params, d,
                                          builder.rows_seen());
    mining::AprioriOptions opt;
    opt.min_frequency = 0.1;
    opt.max_size = 2;
    const auto hot = mining::MineWithEstimator(*est, d, opt);
    std::printf("after %zu events: %zu frequent itemsets;",
                builder.rows_seen(), hot.size());
    const core::Itemset t1(d, {1, 4});
    const core::Itemset t2(d, {7, 9});
    std::printf("  f{1,4}=%.3f (true %.3f)  f{7,9}=%.3f (true %.3f)\n",
                est->EstimateFrequency(t1), full_log.Frequency(t1),
                est->EstimateFrequency(t2), full_log.Frequency(t2));
  }
  return 0;
}
