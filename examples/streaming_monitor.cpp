// Streaming frequent-itemset monitoring (the §1.2 streaming discussion).
//
// Event logs arrive one row at a time; the ingest subsystem
// (src/ingest/) maintains a STREAM-SUBSAMPLE summary in one pass and
// constant memory -- the paper proves no streaming algorithm can
// maintain asymptotically less state than this sample, so this is also
// the right baseline architecture. Rows flow through the SPSC ring into
// the dedicated ingest thread, which publishes an immutable Engine
// snapshot into a SketchPod at the end of each phase; the monitor waits
// for the epoch to advance (exactly what a remote client does with the
// SUBSCRIBE opcode) and mines the published snapshot while ingest of
// the next phase could already be under way.

#include <chrono>
#include <cstdio>

#include "data/generators.h"
#include "ingest/ingest.h"
#include "mining/apriori.h"
#include "serve/pod.h"
#include "sketch/subsample.h"
#include "util/random.h"

int main() {
  using namespace ifsketch;

  const std::size_t d = 20;
  const std::size_t kPhaseRows = 150000;
  core::SketchParams params;
  params.k = 2;
  params.eps = 0.02;
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kEstimator;

  const std::size_t slots = sketch::SubsampleSketch::SampleCount(params, d);
  std::printf("reservoir: %zu slots x %zu bits = %zu bits of state\n", slots,
              d, slots * d);

  serve::SketchPod pod;
  pod.AddStream("live");

  ingest::IngestOptions options;
  options.algorithm = "STREAM-SUBSAMPLE";
  options.params = params;
  options.d = d;
  options.seed = 99;
  options.rows_per_snapshot = kPhaseRows;  // one epoch per phase
  std::string error;
  auto service = ingest::IngestService::Create(
      options,
      [&pod](std::shared_ptr<const Engine> engine, std::uint64_t rows) {
        pod.Publish("live", std::move(engine), rows);
      },
      &error);
  if (service == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // Simulate a drifting event stream: the hot itemset changes mid-stream.
  core::Database full_log(0, d);
  util::Rng gen(123);
  const data::Planted phase1{{1, 4}, 0.3};
  const data::Planted phase2{{7, 9}, 0.4};
  for (int phase = 0; phase < 2; ++phase) {
    const core::Database chunk = data::PlantedItemsets(
        kPhaseRows, d, {phase == 0 ? phase1 : phase2}, 0.05, gen);
    for (std::size_t i = 0; i < chunk.num_rows(); ++i) {
      service->Push(chunk.Row(i));
      full_log.AppendRow(chunk.Row(i));
    }
    // Wait for the end-of-phase snapshot to publish (epoch phase+1),
    // then query it -- the ingest thread keeps running independently.
    serve::SnapshotState state;
    if (!pod.WaitForEpoch("live", static_cast<std::uint64_t>(phase),
                          std::chrono::milliseconds(60000), &state) ||
        state.epoch <= static_cast<std::uint64_t>(phase)) {
      std::fprintf(stderr, "error: snapshot did not publish\n");
      return 1;
    }
    const auto engine = pod.Acquire("live");
    mining::AprioriOptions opt;
    opt.min_frequency = 0.1;
    opt.max_size = 2;
    const auto hot = engine->mine(opt);
    std::printf("after %zu events: %zu frequent itemsets;",
                static_cast<std::size_t>(state.rows_seen), hot.size());
    const core::Itemset t1(d, {1, 4});
    const core::Itemset t2(d, {7, 9});
    std::printf("  f{1,4}=%.3f (true %.3f)  f{7,9}=%.3f (true %.3f)\n",
                engine->estimate(t1), full_log.Frequency(t1),
                engine->estimate(t2), full_log.Frequency(t2));
  }
  service->Finish();
  return 0;
}
