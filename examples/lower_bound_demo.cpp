// The paper's main result as a runnable demonstration.
//
// Builds the Theorem 13 hard database, sketches it with SUBSAMPLE at the
// Lemma 9 size, and decodes the entire embedded payload back out of the
// sketch -- showing the summary *is* an encoding of d/(2 eps) arbitrary
// bits, which is why no sketch can be asymptotically smaller than the
// sample (Theorem 13/14). Then it truncates the sketch below the bound
// and watches the reconstruction collapse.

#include <cstdio>

#include "lowerbound/thm13.h"
#include "sketch/subsample.h"
#include "util/bitio.h"
#include "util/random.h"

int main() {
  using namespace ifsketch;

  util::Rng rng(42);
  const std::size_t d = 64;
  const std::size_t k = 3;
  const std::size_t num_rows = 100;  // R = 1/eps
  const lowerbound::Thm13Instance inst(d, k, num_rows);

  std::printf("hard instance: d=%zu, k=%zu, 1/eps=%zu -> payload %zu bits\n",
              d, k, num_rows, inst.PayloadBits());

  // The adversary's secret: an arbitrary bit string.
  const util::BitVector payload = rng.RandomBits(inst.PayloadBits());
  const core::Database db = inst.BuildDatabase(payload);

  core::SketchParams params;
  params.k = k;
  params.eps = inst.SketchEps();
  params.delta = 0.05;
  params.scope = core::Scope::kForAll;
  params.answer = core::Answer::kIndicator;

  sketch::SubsampleSketch algo;
  const util::BitVector summary = algo.Build(db, params, rng);
  std::printf("sketch: %zu bits (payload/sketch = %.2f)\n", summary.size(),
              static_cast<double>(inst.PayloadBits()) /
                  static_cast<double>(summary.size()));

  const auto indicator =
      algo.LoadIndicator(summary, params, d, db.num_rows());
  const util::BitVector recovered = inst.ReconstructPayload(*indicator);
  std::printf("full sketch:      %zu / %zu payload bits recovered\n",
              inst.PayloadBits() - recovered.HammingDistance(payload),
              inst.PayloadBits());

  // Truncate the summary below the information-theoretic bound and retry.
  for (const double keep : {0.5, 0.25, 0.1, 0.02}) {
    const std::size_t rows_kept = static_cast<std::size_t>(
        keep * static_cast<double>(summary.size() / d));
    util::BitWriter w;
    for (std::size_t r = 0; r < rows_kept; ++r) {
      w.WriteBits(summary.Slice(r * d, d));
    }
    const auto small =
        algo.LoadIndicator(w.Finish(), params, d, db.num_rows());
    const util::BitVector guess = inst.ReconstructPayload(*small);
    std::printf("truncated to %3.0f%%: %zu / %zu payload bits recovered\n",
                100 * keep,
                inst.PayloadBits() - guess.HammingDistance(payload),
                inst.PayloadBits());
  }
  std::printf("(random guessing recovers ~%zu)\n", inst.PayloadBits() / 2);
  return 0;
}
