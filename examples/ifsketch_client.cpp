// ifsketch_client: query a running ifsketch_server.
//
//   ifsketch_client --port P[,P2,...] [--retries N] [--timeout-ms MS]
//                   info  <name>
//   ifsketch_client --port P ... query <name> <attr> [attr...]
//   ifsketch_client --port P ... batch <name> [frames]  (queries on stdin)
//   ifsketch_client --port P ... refresh <name>
//   ifsketch_client --port P ... subscribe <name> <min_epoch> [timeout_ms]
//   ifsketch_client --port P ... health
//   ifsketch_client --port P ... stats
//
// --port takes a comma-separated endpoint list: the client connects to
// the first, and on a lost connection retries (up to --retries attempts
// total, jittered exponential backoff) rotating through the list -- so a
// killed server is survived as long as one listed replica still answers.
// --timeout-ms bounds each attempt's wait for a reply; an expired
// deadline counts as a lost connection and rotates/retries the same way.
// Request-level refusals (unknown sketch, bad query) never retry.
//
// `query` prints the same line ifsketch_cli prints for a direct local
// query of the same sketch file -- served answers are bit-identical to
// direct Engine queries, and the CI smoke test diffs the two outputs.
// `batch` reads one query per stdin line (ascending attribute indices,
// space-separated) and prints one estimate per line; the whole batch
// travels in a single request frame and is answered by one fused Engine
// call server-side. With the optional [frames] argument (> 1), the
// batch is instead PIPELINED: the queries split into up to that many
// request frames written back-to-back on one connection, and the
// replies -- which the server returns strictly in request order -- are
// concatenated. Output is bit-identical to the single-frame form; the
// CI reactor smoke diffs the two.
//
// `stats` pulls the server's full metrics registry over the STATS
// opcode and prints it in the Prometheus text exposition format
// (obs::MetricsSnapshot::RenderText) -- counters, gauges, and
// histograms with cumulative buckets plus derived p50/p90/p99 comment
// lines. The percentiles are computed client-side from the wire buckets
// by the same obs::HistogramSnapshot::Quantile the server uses, so both
// ends always agree.
//
// `refresh` reports the snapshot a stream sketch currently serves;
// `subscribe` blocks until the epoch exceeds min_epoch (default timeout
// 30 s) and exits 0 only when the advance was observed, so shell
// pipelines can wait for a publish: the CI ingest smoke does exactly
// that.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/itemset.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace ifsketch;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ifsketch_client --port P[,P2,...] [--retries N] "
               "[--timeout-ms MS] <command>\n"
               "commands:\n"
               "  info  <name>\n"
               "  query <name> <attr> [attr...]\n"
               "  batch <name> [frames]   (one query per stdin line; "
               "frames > 1 pipelines)\n"
               "  refresh <name>\n"
               "  subscribe <name> <min_epoch> [timeout_ms]\n"
               "  health\n"
               "  stats\n");
  return 2;
}

int ServerError(const serve::SketchClient& client) {
  std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
  // Mirror ifsketch_cli's exit-code split: unknown name / bad query are
  // caller mistakes (1); transport or server trouble is 4.
  switch (client.last_status()) {
    case serve::Status::kUnknownSketch:
    case serve::Status::kUnsupportedQuery:
    case serve::Status::kBadRequest:
      return 1;
    default:
      return 4;
  }
}

int Info(serve::SketchClient& client, const std::string& name) {
  const auto info = client.Info(name);
  if (!info.has_value()) return ServerError(client);
  std::printf("algorithm:  %s\n"
              "guarantee:  %s %s  (k=%u, eps=%g, delta=%g)\n"
              "database:   n=%llu rows, d=%llu attributes\n"
              "summary:    %llu bits\n",
              info->algorithm.c_str(),
              info->scope == 0 ? "FOR-ALL" : "FOR-EACH",
              info->answer == 0 ? "INDICATOR" : "ESTIMATOR", info->k,
              info->eps, info->delta,
              static_cast<unsigned long long>(info->n),
              static_cast<unsigned long long>(info->d),
              static_cast<unsigned long long>(info->summary_bits));
  return 0;
}

int Query(serve::SketchClient& client, const std::string& name,
          const std::vector<std::uint32_t>& attrs) {
  // Fetch the sketch's context first: the printed line needs d (for the
  // itemset rendering), eps/delta and the algorithm name.
  const auto info = client.Info(name);
  if (!info.has_value()) return ServerError(client);
  for (std::uint32_t a : attrs) {
    if (a >= info->d) {
      std::fprintf(stderr, "error: attribute %u out of range (d=%llu)\n",
                   a, static_cast<unsigned long long>(info->d));
      return 1;
    }
  }
  core::Itemset t(static_cast<std::size_t>(info->d));
  for (std::uint32_t a : attrs) t.Add(a);

  if (info->answer == 0) {
    const auto bits = client.AreFrequent(name, {attrs});
    if (!bits.has_value()) return ServerError(client);
    std::printf("f%s %s %g  (indicator sketch, prob %.2f, via %s)\n",
                t.ToString().c_str(), (*bits)[0] ? ">" : "<=", info->eps,
                1.0 - info->delta, info->algorithm.c_str());
    return 0;
  }
  const auto answers = client.EstimateMany(name, {attrs});
  if (!answers.has_value()) return ServerError(client);
  std::printf("f%s ~= %.5f  (+/- %.4f with prob %.2f, via %s)\n",
              t.ToString().c_str(), (*answers)[0], info->eps,
              1.0 - info->delta, info->algorithm.c_str());
  return 0;
}

int Refresh(serve::SketchClient& client, const std::string& name) {
  const auto state = client.Refresh(name);
  if (!state.has_value()) return ServerError(client);
  std::printf("epoch %llu  rows_seen %llu\n",
              static_cast<unsigned long long>(state->epoch),
              static_cast<unsigned long long>(state->rows_seen));
  return 0;
}

int Subscribe(serve::SketchClient& client, const std::string& name,
              std::uint64_t min_epoch, std::uint32_t timeout_ms) {
  const auto state = client.Subscribe(name, min_epoch, timeout_ms);
  if (!state.has_value()) return ServerError(client);
  std::printf("epoch %llu  rows_seen %llu\n",
              static_cast<unsigned long long>(state->epoch),
              static_cast<unsigned long long>(state->rows_seen));
  if (state->epoch <= min_epoch) {
    std::fprintf(stderr, "error: timed out waiting for epoch > %llu\n",
                 static_cast<unsigned long long>(min_epoch));
    return 1;
  }
  return 0;
}

int Health(serve::SketchClient& client) {
  const auto pods = client.Health();
  if (!pods.has_value()) return ServerError(client);
  static const char* const kNames[] = {"healthy", "suspect", "down"};
  for (std::size_t i = 0; i < pods->size(); ++i) {
    const serve::PodHealthInfo& pod = (*pods)[i];
    std::printf("pod %zu: %s failures=%u inflight=%llu resident=%lluB\n",
                i, pod.health <= 2 ? kNames[pod.health] : "?",
                pod.consecutive_failures,
                static_cast<unsigned long long>(pod.inflight),
                static_cast<unsigned long long>(pod.resident_bytes));
  }
  return 0;
}

int Stats(serve::SketchClient& client) {
  const auto stats = client.Stats();
  if (!stats.has_value()) return ServerError(client);
  // Rebuild a MetricsSnapshot from the wire structs and render with the
  // shared exposition code -- identical output to a server-side dump.
  obs::MetricsSnapshot snap;
  for (const serve::StatsCounter& c : stats->counters) {
    snap.counters.emplace_back(c.name, c.value);
  }
  for (const serve::StatsGauge& g : stats->gauges) {
    snap.gauges.emplace_back(g.name, g.value);
  }
  for (const serve::StatsHistogram& h : stats->histograms) {
    obs::HistogramSnapshot hist;
    hist.count = h.count;
    hist.sum = h.sum;
    hist.max = h.max;
    hist.buckets = h.buckets;
    snap.histograms.emplace_back(h.name, std::move(hist));
  }
  std::fputs(snap.RenderText().c_str(), stdout);
  return 0;
}

int Batch(serve::SketchClient& client, const std::string& name,
          std::size_t frames) {
  std::vector<std::vector<std::uint32_t>> queries;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::vector<std::uint32_t> attrs;
    const char* p = line.c_str();
    char* end = nullptr;
    for (;;) {
      const unsigned long v = std::strtoul(p, &end, 10);
      if (end == p) break;
      attrs.push_back(static_cast<std::uint32_t>(v));
      p = end;
    }
    if (!attrs.empty()) queries.push_back(std::move(attrs));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "error: no queries on stdin\n");
    return 1;
  }
  const auto answers = frames > 1
                           ? client.EstimateManyPipelined(name, queries, frames)
                           : client.EstimateMany(name, queries);
  if (!answers.has_value()) return ServerError(client);
  for (double a : *answers) std::printf("%.17g\n", a);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::uint16_t> ports;
  unsigned long retries = 3;
  unsigned long timeout_ms = 0;
  for (std::size_t i = 0; i + 1 < args.size();) {
    if (args[i] == "--port") {
      // Comma-separated endpoint list; each entry is a loopback port.
      const std::string spec = args[i + 1];
      std::size_t pos = 0;
      while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        const std::string piece = spec.substr(pos, comma - pos);
        char* end = nullptr;
        const unsigned long v = std::strtoul(piece.c_str(), &end, 10);
        if (piece.empty() || end == nullptr || *end != '\0' || v == 0 ||
            v > 65535) {
          return Usage();
        }
        ports.push_back(static_cast<std::uint16_t>(v));
        pos = comma + 1;
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--retries") {
      char* end = nullptr;
      retries = std::strtoul(args[i + 1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || retries == 0 ||
          retries > 100) {
        return Usage();
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (args[i] == "--timeout-ms") {
      char* end = nullptr;
      timeout_ms = std::strtoul(args[i + 1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || timeout_ms == 0 ||
          timeout_ms > 3600000) {
        return Usage();
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  if (ports.empty() || args.empty()) return Usage();

  // The factory rotates through the endpoint list: attempt 1 uses the
  // first port, each reconnect moves to the next, wrapping around.
  serve::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(retries);
  policy.attempt_timeout = std::chrono::milliseconds(timeout_ms);
  serve::SketchClient client(
      [ports, next = std::size_t{0}]() mutable {
        return serve::TcpConnect(ports[next++ % ports.size()]);
      },
      policy);

  const std::string& cmd = args[0];
  if (cmd == "health" && args.size() == 1) return Health(client);
  if (cmd == "stats" && args.size() == 1) return Stats(client);
  if (args.size() < 2) return Usage();
  const std::string& name = args[1];
  if (cmd == "info" && args.size() == 2) return Info(client, name);
  if (cmd == "query" && args.size() >= 3) {
    std::vector<std::uint32_t> attrs;
    for (std::size_t i = 2; i < args.size(); ++i) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(args[i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return Usage();
      attrs.push_back(static_cast<std::uint32_t>(v));
    }
    return Query(client, name, attrs);
  }
  if (cmd == "batch" && (args.size() == 2 || args.size() == 3)) {
    std::size_t frames = 1;
    if (args.size() == 3) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(args[2].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0 || v > 4096) {
        return Usage();
      }
      frames = static_cast<std::size_t>(v);
    }
    return Batch(client, name, frames);
  }
  if (cmd == "refresh" && args.size() == 2) return Refresh(client, name);
  if (cmd == "subscribe" && (args.size() == 3 || args.size() == 4)) {
    char* end = nullptr;
    const unsigned long long epoch = std::strtoull(args[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return Usage();
    unsigned long timeout_ms = 30000;
    if (args.size() == 4) {
      timeout_ms = std::strtoul(args[3].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' ||
          timeout_ms > serve::kMaxSubscribeTimeoutMs) {
        return Usage();
      }
    }
    return Subscribe(client, name, static_cast<std::uint64_t>(epoch),
                     static_cast<std::uint32_t>(timeout_ms));
  }
  return Usage();
}
