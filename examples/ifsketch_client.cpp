// ifsketch_client: query a running ifsketch_server.
//
//   ifsketch_client --port P info  <name>
//   ifsketch_client --port P query <name> <attr> [attr...]
//   ifsketch_client --port P batch <name>        (queries on stdin)
//   ifsketch_client --port P refresh <name>
//   ifsketch_client --port P subscribe <name> <min_epoch> [timeout_ms]
//
// `query` prints the same line ifsketch_cli prints for a direct local
// query of the same sketch file -- served answers are bit-identical to
// direct Engine queries, and the CI smoke test diffs the two outputs.
// `batch` reads one query per stdin line (ascending attribute indices,
// space-separated) and prints one estimate per line; the whole batch
// travels in a single request frame and is answered by one fused Engine
// call server-side.
//
// `refresh` reports the snapshot a stream sketch currently serves;
// `subscribe` blocks until the epoch exceeds min_epoch (default timeout
// 30 s) and exits 0 only when the advance was observed, so shell
// pipelines can wait for a publish: the CI ingest smoke does exactly
// that.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/itemset.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace ifsketch;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ifsketch_client --port P info  <name>\n"
               "  ifsketch_client --port P query <name> <attr> [attr...]\n"
               "  ifsketch_client --port P batch <name>   "
               "(one query per stdin line)\n"
               "  ifsketch_client --port P refresh <name>\n"
               "  ifsketch_client --port P subscribe <name> <min_epoch>"
               " [timeout_ms]\n");
  return 2;
}

int ServerError(const serve::SketchClient& client) {
  std::fprintf(stderr, "error: %s\n", client.last_error().c_str());
  // Mirror ifsketch_cli's exit-code split: unknown name / bad query are
  // caller mistakes (1); transport or server trouble is 4.
  switch (client.last_status()) {
    case serve::Status::kUnknownSketch:
    case serve::Status::kUnsupportedQuery:
    case serve::Status::kBadRequest:
      return 1;
    default:
      return 4;
  }
}

int Info(serve::SketchClient& client, const std::string& name) {
  const auto info = client.Info(name);
  if (!info.has_value()) return ServerError(client);
  std::printf("algorithm:  %s\n"
              "guarantee:  %s %s  (k=%u, eps=%g, delta=%g)\n"
              "database:   n=%llu rows, d=%llu attributes\n"
              "summary:    %llu bits\n",
              info->algorithm.c_str(),
              info->scope == 0 ? "FOR-ALL" : "FOR-EACH",
              info->answer == 0 ? "INDICATOR" : "ESTIMATOR", info->k,
              info->eps, info->delta,
              static_cast<unsigned long long>(info->n),
              static_cast<unsigned long long>(info->d),
              static_cast<unsigned long long>(info->summary_bits));
  return 0;
}

int Query(serve::SketchClient& client, const std::string& name,
          const std::vector<std::uint32_t>& attrs) {
  // Fetch the sketch's context first: the printed line needs d (for the
  // itemset rendering), eps/delta and the algorithm name.
  const auto info = client.Info(name);
  if (!info.has_value()) return ServerError(client);
  for (std::uint32_t a : attrs) {
    if (a >= info->d) {
      std::fprintf(stderr, "error: attribute %u out of range (d=%llu)\n",
                   a, static_cast<unsigned long long>(info->d));
      return 1;
    }
  }
  core::Itemset t(static_cast<std::size_t>(info->d));
  for (std::uint32_t a : attrs) t.Add(a);

  if (info->answer == 0) {
    const auto bits = client.AreFrequent(name, {attrs});
    if (!bits.has_value()) return ServerError(client);
    std::printf("f%s %s %g  (indicator sketch, prob %.2f, via %s)\n",
                t.ToString().c_str(), (*bits)[0] ? ">" : "<=", info->eps,
                1.0 - info->delta, info->algorithm.c_str());
    return 0;
  }
  const auto answers = client.EstimateMany(name, {attrs});
  if (!answers.has_value()) return ServerError(client);
  std::printf("f%s ~= %.5f  (+/- %.4f with prob %.2f, via %s)\n",
              t.ToString().c_str(), (*answers)[0], info->eps,
              1.0 - info->delta, info->algorithm.c_str());
  return 0;
}

int Refresh(serve::SketchClient& client, const std::string& name) {
  const auto state = client.Refresh(name);
  if (!state.has_value()) return ServerError(client);
  std::printf("epoch %llu  rows_seen %llu\n",
              static_cast<unsigned long long>(state->epoch),
              static_cast<unsigned long long>(state->rows_seen));
  return 0;
}

int Subscribe(serve::SketchClient& client, const std::string& name,
              std::uint64_t min_epoch, std::uint32_t timeout_ms) {
  const auto state = client.Subscribe(name, min_epoch, timeout_ms);
  if (!state.has_value()) return ServerError(client);
  std::printf("epoch %llu  rows_seen %llu\n",
              static_cast<unsigned long long>(state->epoch),
              static_cast<unsigned long long>(state->rows_seen));
  if (state->epoch <= min_epoch) {
    std::fprintf(stderr, "error: timed out waiting for epoch > %llu\n",
                 static_cast<unsigned long long>(min_epoch));
    return 1;
  }
  return 0;
}

int Batch(serve::SketchClient& client, const std::string& name) {
  std::vector<std::vector<std::uint32_t>> queries;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::vector<std::uint32_t> attrs;
    const char* p = line.c_str();
    char* end = nullptr;
    for (;;) {
      const unsigned long v = std::strtoul(p, &end, 10);
      if (end == p) break;
      attrs.push_back(static_cast<std::uint32_t>(v));
      p = end;
    }
    if (!attrs.empty()) queries.push_back(std::move(attrs));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "error: no queries on stdin\n");
    return 1;
  }
  const auto answers = client.EstimateMany(name, queries);
  if (!answers.has_value()) return ServerError(client);
  for (double a : *answers) std::printf("%.17g\n", a);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t port = 0;
  for (std::size_t i = 0; i + 1 < args.size();) {
    if (args[i] == "--port") {
      char* end = nullptr;
      const unsigned long v = std::strtoul(args[i + 1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0 || v > 65535) {
        return Usage();
      }
      port = static_cast<std::size_t>(v);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  if (port == 0 || args.size() < 2) return Usage();

  auto transport = serve::TcpConnect(static_cast<std::uint16_t>(port));
  if (transport == nullptr) {
    std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%zu\n", port);
    return 4;
  }
  serve::SketchClient client(std::move(transport));

  const std::string& cmd = args[0];
  const std::string& name = args[1];
  if (cmd == "info" && args.size() == 2) return Info(client, name);
  if (cmd == "query" && args.size() >= 3) {
    std::vector<std::uint32_t> attrs;
    for (std::size_t i = 2; i < args.size(); ++i) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(args[i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return Usage();
      attrs.push_back(static_cast<std::uint32_t>(v));
    }
    return Query(client, name, attrs);
  }
  if (cmd == "batch" && args.size() == 2) return Batch(client, name);
  if (cmd == "refresh" && args.size() == 2) return Refresh(client, name);
  if (cmd == "subscribe" && (args.size() == 3 || args.size() == 4)) {
    char* end = nullptr;
    const unsigned long long epoch = std::strtoull(args[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return Usage();
    unsigned long timeout_ms = 30000;
    if (args.size() == 4) {
      timeout_ms = std::strtoul(args[3].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' ||
          timeout_ms > serve::kMaxSubscribeTimeoutMs) {
        return Usage();
      }
    }
    return Subscribe(client, name, static_cast<std::uint64_t>(epoch),
                     static_cast<std::uint32_t>(timeout_ms));
  }
  return Usage();
}
