// Regenerates the golden sketches and pinned answers under tests/data/.
//
//   make_golden [out_dir]        (default: tests/data)
//
// For every algorithm in the pinned spec (tests/golden_spec.h, shared
// with tests/golden_files_test.cc) this writes
//   <slug>.ifsk          Engine::Build over the pinned database, saved
//                        at format v1 (byte-packed) -- deliberately
//                        pinned to the legacy version so the v1 read
//                        path keeps golden coverage forever, and so
//                        regeneration reproduces the checked-in bytes
//                        exactly
//   <slug>.answers.txt   one line per pinned query:
//                          <attr,attr,...> <estimate-hexfloat> <bit>
// plus, for the first algorithm only,
//   <slug>_v2.ifsk       the same summary framed at arena v2 (aligned
//                        word sections; sketch_file.h) -- the golden for
//                        the zero-copy mapped load path, which must
//                        answer bit-identically to the v1 file
//
// Regenerating is only legitimate when a PR deliberately changes the
// serialized format or an algorithm's sampling; answers must never drift
// as a side effect of kernel or batching work.

#include <cstdio>
#include <string>
#include <vector>

#include "../tests/golden_spec.h"
#include "data/generators.h"
#include "engine.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace ifsketch;
  const std::string out_dir = argc > 1 ? argv[1] : "tests/data";
  util::Rng db_rng(golden::kDbSeed);
  const core::Database db = data::PowerLawBaskets(
      golden::kRows, golden::kCols, 1.0, 0.5, 4, 3, 0.2, db_rng);
  const auto queries = golden::PinnedQueries();

  std::size_t index = 0;
  for (const char* algo : golden::kAlgorithms) {
    util::Rng rng(golden::kBuildSeed + index);
    ++index;
    const auto engine =
        Engine::Build(db, algo, golden::GoldenParams(), rng);
    if (!engine.has_value()) {
      std::fprintf(stderr, "error: cannot build %s\n", algo);
      return 1;
    }
    const std::string slug = golden::Slug(algo);
    const std::string sk_path = out_dir + "/" + slug + ".ifsk";
    if (!sketch::SaveSketchFile(sk_path, engine->file(),
                                sketch::arena::kVersionLegacy)) {
      std::fprintf(stderr, "error: cannot write %s\n", sk_path.c_str());
      return 1;
    }
    if (index == 1) {  // first algorithm: also the arena-v2 goldens
      const std::string v2_path = out_dir + "/" + slug + "_v2.ifsk";
      if (!sketch::SaveSketchFile(v2_path, engine->file())) {
        std::fprintf(stderr, "error: cannot write %s\n", v2_path.c_str());
        return 1;
      }
      std::printf("wrote %s (arena v2, same summary bits)\n",
                  v2_path.c_str());
      // The same v2 bytes plus the CRC32C integrity trailer: golden for
      // the checksum-validating variants of both load paths.
      const std::string crc_path = out_dir + "/" + slug + "_v2_crc.ifsk";
      if (!sketch::SaveSketchFile(crc_path, engine->file(),
                                  sketch::arena::kVersionArena,
                                  sketch::SketchChecksum::kCrc32c)) {
        std::fprintf(stderr, "error: cannot write %s\n", crc_path.c_str());
        return 1;
      }
      std::printf("wrote %s (arena v2 + crc32c trailer)\n", crc_path.c_str());
    }

    std::vector<double> estimates;
    engine->estimate_many(queries, &estimates);
    std::vector<bool> bits;
    engine->are_frequent(queries, &bits);

    const std::string ans_path = out_dir + "/" + slug + ".answers.txt";
    std::FILE* out = std::fopen(ans_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", ans_path.c_str());
      return 1;
    }
    std::fprintf(out, "# golden answers v1 for %s\n", algo);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto attrs = queries[i].Attributes();
      std::string key;
      for (std::size_t a : attrs) {
        if (!key.empty()) key.push_back(',');
        key += std::to_string(a);
      }
      // %a renders the exact bits of the double; the test parses it back
      // with strtod, which is exact for hexfloats.
      std::fprintf(out, "%s %a %d\n", key.c_str(), estimates[i],
                   bits[i] ? 1 : 0);
    }
    std::fclose(out);
    std::printf("wrote %s (%zu bits) and %s (%zu queries)\n",
                sk_path.c_str(), engine->summary_bits(), ans_path.c_str(),
                queries.size());
  }
  return 0;
}
