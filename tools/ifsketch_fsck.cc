// ifsketch_fsck: offline integrity verification for durable artifacts.
//
//   ifsketch_fsck PATH [PATH ...]
//
// Each PATH is either an IFSK sketch file or a WAL directory (see
// src/ingest/wal.h). Files are pushed through BOTH parsers -- the
// copying stream parser and, for arena v2, the zero-copy mapped
// validator -- so fsck accepts exactly what every load path accepts,
// including the optional CRC32C integrity trailer. Directories get the
// full WAL walk: checkpoint magic/CRC/decodability (the named algorithm
// must exist and accept the saved builder state), segment chaining, and
// every record frame; a torn tail in the last segment is recoverable by
// design and only noted.
//
// Output: one "ok"/note line per healthy artifact to stdout, one
// "path: byte N: reason" line per failure to stderr. Exit 0 when every
// PATH verified, 1 when anything is corrupt, 2 on usage errors --
// scripts can gate a deploy on it.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "ingest/wal.h"
#include "sketch/sketch_file.h"
#include "sketch/sketch_view.h"

namespace {

using namespace ifsketch;

int Usage() {
  std::fprintf(stderr,
               "usage: ifsketch_fsck PATH [PATH ...]\n"
               "  PATH  an IFSK sketch file or a WAL directory\n");
  return 2;
}

/// True when the (already fully validated) file ends with the integrity
/// trailer, so the report can say whether corruption would be caught.
bool HasTrailer(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const std::streamoff size = in.tellg();
  if (!in || size < static_cast<std::streamoff>(sketch::arena::kTrailerBytes)) {
    return false;
  }
  char magic[4];
  in.seekg(size - static_cast<std::streamoff>(sketch::arena::kTrailerBytes));
  in.read(magic, 4);
  return in &&
         std::memcmp(magic, sketch::arena::kTrailerMagic, 4) == 0;
}

/// Both-parser verification of one sketch file. Returns true when every
/// applicable load path accepts it.
bool VerifySketchFile(const std::string& path) {
  sketch::SketchError error;
  const auto file = sketch::LoadSketchFile(path, &error);
  if (!file.has_value()) {
    std::fprintf(stderr, "%s: byte %llu: %s\n", path.c_str(),
                 static_cast<unsigned long long>(error.offset),
                 error.message.c_str());
    return false;
  }
  if (sketch::ResolveAlgorithm(*file) == nullptr) {
    std::fprintf(stderr, "%s: byte 0: unknown producing algorithm \"%s\"\n",
                 path.c_str(), file->algorithm.c_str());
    return false;
  }
  if (file->version == sketch::arena::kVersionArena) {
    sketch::SketchError view_error;
    if (!sketch::ViewSketchFile(path, &view_error).has_value()) {
      std::fprintf(stderr, "%s: byte %llu: (mapped path) %s\n", path.c_str(),
                   static_cast<unsigned long long>(view_error.offset),
                   view_error.message.c_str());
      return false;
    }
  }
  std::printf("%s: ok (v%u, %s, %s, %zu-bit summary)\n", path.c_str(),
              file->version, file->algorithm.c_str(),
              HasTrailer(path) ? "crc32c trailer" : "no checksum",
              file->summary.size());
  return true;
}

bool VerifyWalDirectory(const std::string& path) {
  const ingest::WalFsckReport report = ingest::VerifyWalDir(path);
  for (const auto& note : report.notes) {
    std::printf("%s: note: %s\n", path.c_str(), note.c_str());
  }
  for (const auto& failure : report.failures) {
    std::fprintf(stderr, "%s\n", failure.c_str());
  }
  if (report.ok) std::printf("%s: ok (WAL directory)\n", path.c_str());
  return report.ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::error_code ec;
    const bool is_dir = std::filesystem::is_directory(path, ec);
    if (!(is_dir ? VerifyWalDirectory(path) : VerifySketchFile(path))) {
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
